//! Up*/Down* routing.
//!
//! Links are oriented toward a root switch; a legal path climbs zero or
//! more *up* links, then descends zero or more *down* links, and never
//! turns upward again. The up/down restriction breaks every cycle in the
//! channel dependency graph, making Up*/Down* deadlock-free on a single
//! virtual lane on any topology — the baseline deadlock argument the
//! paper's §VI-C discussion builds on.
//!
//! Both hot phases fan across the configured workers: the per-delivery-
//! switch legal-distance sweeps (each group's rows depend only on the
//! labels) and the per-switch LFT fill (each switch's row is independent).

use std::collections::VecDeque;

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::{IbError, IbResult, PortNum};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::engine::{RoutingEngine, RoutingOptions};
use crate::graph::{parallel_for_each, Components, SwitchGraph};
use crate::tables::{stages_to_lfts, RoutingTables, VlAssignment};

/// The Up*/Down* engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpDown {
    /// Root switch index override; by default the highest-rank switch.
    pub root: Option<usize>,
}

/// Per-switch (level, id) label; "up" is lexicographically decreasing.
pub(crate) fn labels(g: &SwitchGraph, root: usize) -> Vec<(u32, usize)> {
    let mut level = vec![u32::MAX; g.len()];
    let mut queue = VecDeque::new();
    level[root] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if level[v as usize] == u32::MAX {
                level[v as usize] = level[u] + 1;
                queue.push_back(v as usize);
            }
        }
    }
    level.into_iter().enumerate().map(|(i, l)| (l, i)).collect()
}

/// Per-component labels: every component gets its own root and its own
/// BFS levels, so a split fabric still carries a complete up*/down*
/// orientation. Labels are only ever compared across an edge, and edges
/// never cross components, so independent level ranges are safe.
pub(crate) fn component_labels(
    g: &SwitchGraph,
    comps: &Components,
    explicit_root: Option<usize>,
) -> Vec<(u32, usize)> {
    let ranks = g.ranks();
    let mut level = vec![u32::MAX; g.len()];
    let mut queue = VecDeque::new();
    for c in 0..comps.count() as u32 {
        // The component's root: the explicit override if it lives here,
        // else the maximal-rank switch (lowest index on ties), else —
        // for a component with no ranked switch — the lowest index.
        let root = explicit_root
            .filter(|&r| r < g.len() && comps.label_of(r) == c)
            .or_else(|| {
                (0..g.len())
                    .filter(|&s| comps.label_of(s) == c && ranks[s] != u32::MAX)
                    .max_by_key(|&s| (ranks[s], std::cmp::Reverse(s)))
            })
            .or_else(|| (0..g.len()).find(|&s| comps.label_of(s) == c));
        let Some(root) = root else { continue };
        level[root] = 0;
        queue.push_back(root);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in g.neighbors(u) {
                if level[v as usize] == u32::MAX {
                    level[v as usize] = level[u] + 1;
                    queue.push_back(v as usize);
                }
            }
        }
    }
    level.into_iter().enumerate().map(|(i, l)| (l, i)).collect()
}

/// Whether the move `from -> to` is an *up* move under the labels.
pub(crate) fn is_up(labels: &[(u32, usize)], from: usize, to: usize) -> bool {
    labels[to] < labels[from]
}

impl UpDown {
    /// Picks the default root: a switch of maximal rank (a core switch in a
    /// fat tree), tie-broken by lowest index.
    fn pick_root(&self, g: &SwitchGraph) -> usize {
        if let Some(r) = self.root {
            return r;
        }
        let ranks = g.ranks();
        // `max_by_key` keeps the *last* maximal element, so make the key
        // unique: prefer higher rank, then *lower* index.
        (0..g.len())
            .filter(|&s| ranks[s] != u32::MAX)
            .max_by_key(|&s| (ranks[s], std::cmp::Reverse(s)))
            .unwrap_or(0)
    }
}

impl RoutingEngine for UpDown {
    fn name(&self) -> &'static str {
        "up-down"
    }

    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }
        let n = g.len();
        // A split fabric gets one root (and one label range) per
        // component; the connected fast path is byte-identical to the
        // single-root labeling it always used.
        let comps = g.components();
        let lab = if comps.is_partitioned() {
            component_labels(&g, &comps, self.root)
        } else {
            labels(&g, self.pick_root(&g))
        };
        // Relaxation order for the up-phase: increasing label, so every
        // up-move goes to an already-finalized switch. Identical for every
        // delivery switch, so it is computed once, outside the fan-out.
        let order = {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&s| lab[s]);
            order
        };

        // Group destinations by delivery switch; legal distances are
        // computed once per delivery switch.
        let mut by_switch: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (i, d) in g.destinations().iter().enumerate() {
            by_switch.entry(d.switch).or_default().push(i);
        }
        let mut groups: Vec<(usize, Vec<usize>)> = by_switch.into_iter().collect();
        groups.sort_unstable_by_key(|(s, _)| *s);

        let workers = opts.effective_workers(n);

        // Phase 1, fanned per delivery switch: row gi of `down_data` holds
        // the shortest all-down distances to groups[gi]'s switch, row gi of
        // `full_data` the shortest legal up*/down* distances. Rows depend
        // only on the shared labels, never on other rows.
        let mut down_data = vec![u32::MAX; groups.len() * n];
        let mut full_data = vec![u32::MAX; groups.len() * n];
        {
            let _span = observer.span("routing.up-down.distances");
            let mut rows: Vec<(&mut [u32], &mut [u32])> = down_data
                .chunks_mut(n)
                .zip(full_data.chunks_mut(n))
                .collect();
            parallel_for_each(
                &mut rows,
                workers,
                || Vec::<u32>::with_capacity(n),
                |queue, gi, (down, full)| {
                    let dsw = groups[gi].0;
                    down[dsw] = 0;
                    // Reverse BFS along down edges: expand y where y->x is
                    // down, so the path y..dsw stays all-down.
                    queue.clear();
                    queue.push(dsw as u32);
                    let mut head = 0;
                    while head < queue.len() {
                        let x = queue[head] as usize;
                        head += 1;
                        for &(y, _) in g.neighbors(x) {
                            let y = y as usize;
                            if !is_up(&lab, y, x) && down[y] == u32::MAX {
                                down[y] = down[x] + 1;
                                queue.push(y as u32);
                            }
                        }
                    }
                    full.copy_from_slice(down);
                    for &s in &order {
                        for &(v, _) in g.neighbors(s) {
                            let v = v as usize;
                            if is_up(&lab, s, v) && full[v] != u32::MAX {
                                full[s] = full[s].min(full[v].saturating_add(1));
                            }
                        }
                    }
                },
            );
        }
        for (gi, (dsw, _)) in groups.iter().enumerate() {
            let full = &full_data[gi * n..(gi + 1) * n];
            // Legality is required only within the delivery switch's
            // component: a cross-component MAX is an honest hole (the
            // column entry stays `None`), not a broken orientation.
            if (0..n).any(|s| comps.same(s, *dsw) && full[s] == u32::MAX) {
                return Err(IbError::Topology(format!(
                    "no legal up*/down* path to switch {dsw}"
                )));
            }
        }

        // Phase 2, fanned per switch: each switch fills its own staging row
        // from the read-only distance matrices. The candidate set for a
        // (switch, delivery switch) pair is shared by every LID the group
        // delivers, so it is built once per pair.
        let _span = observer.span("routing.up-down.assign");
        let mut stages: Vec<Vec<Option<PortNum>>> = vec![vec![None; g.lid_bound()]; n];
        parallel_for_each(
            &mut stages,
            workers,
            Vec::<PortNum>::new,
            |candidates, s, stage| {
                for (gi, (dsw, dest_indices)) in groups.iter().enumerate() {
                    if s == *dsw {
                        for &di in dest_indices {
                            let dest = g.destinations()[di];
                            stage[dest.lid.raw() as usize] = Some(dest.port);
                        }
                        continue;
                    }
                    let down = &down_data[gi * n..(gi + 1) * n];
                    let full = &full_data[gi * n..(gi + 1) * n];
                    if full[s] == u32::MAX {
                        // Split fabric: the group's delivery switch lives
                        // in another component. The stage entries stay
                        // `None` — explicit holes, not stale routes.
                        continue;
                    }
                    // The rule must compose: a packet that descended into
                    // `s` follows the same LFT row as one that just
                    // arrived climbing, so the row itself must never turn
                    // a descent back upward. Hence: **descend whenever the
                    // destination is down-reachable** (every switch on the
                    // down chain is then also down-reachable and keeps
                    // descending), and climb toward the root otherwise
                    // (the root down-reaches everything, so the climb
                    // terminates).
                    candidates.clear();
                    if down[s] != u32::MAX {
                        for &(v, p) in g.neighbors(s) {
                            let v = v as usize;
                            if !is_up(&lab, s, v) && down[v] != u32::MAX && down[v] + 1 == down[s] {
                                candidates.push(p);
                            }
                        }
                    } else {
                        for &(v, p) in g.neighbors(s) {
                            let v = v as usize;
                            if is_up(&lab, s, v) && full[v] != u32::MAX && full[v] + 1 == full[s] {
                                candidates.push(p);
                            }
                        }
                    }
                    candidates.sort_unstable();
                    for &di in dest_indices {
                        let dest = g.destinations()[di];
                        let pick = candidates[dest.lid.raw() as usize % candidates.len()];
                        stage[dest.lid.raw() as usize] = Some(pick);
                    }
                }
            },
        );
        let decisions = (g.destinations().len() * n) as u64;

        Ok(RoutingTables {
            lfts: stages_to_lfts(&g, stages),
            vls: VlAssignment::SingleVl,
            engine: self.name(),
            decisions,
        })
    }

    /// Incremental repair: recompute the root, labels, and relaxation
    /// order on the degraded graph (cheap — one ranks pass plus one BFS),
    /// then run the legal-distance sweep for the dirty delivery-switch
    /// groups only, splicing the columns into `prior`.
    ///
    /// The pick is *sticky*: the installed port is kept wherever it is
    /// still a legal minimal candidate, and the modular spread decides
    /// only the entries the fault invalidated — re-running the formula
    /// outright would rotate every pick whose candidate set shrank and
    /// inflate the dirty-block diff past the full sweep's. The result
    /// approximates (it is not byte-equal to) a full recompute, which is
    /// why the SM gates every repair behind the fabric verifier.
    fn incremental_repair(&self) -> bool {
        true
    }

    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        // No usable baseline: fall back to the full compute.
        if g.is_empty() || (0..g.len()).any(|s| !prior.lfts.contains_key(&g.node_id(s))) {
            return self.compute_with(subnet, opts, observer);
        }
        let _span = observer.span("routing.up-down.repair");
        let n = g.len();
        // The orientation state is recomputed from scratch on the degraded
        // graph: it is one ranks pass plus one BFS, and reusing a stale
        // root or label set would silently diverge from what a full sweep
        // would install.
        let comps = g.components();
        let lab = if comps.is_partitioned() {
            component_labels(g, &comps, self.root)
        } else {
            labels(g, self.pick_root(g))
        };
        let order = {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by_key(|&s| lab[s]);
            order
        };

        let dirty: FxHashSet<u16> = dirty_dests.iter().map(|l| l.raw()).collect();
        let mut out = prior.clone();
        out.engine = self.name();
        out.vls = VlAssignment::SingleVl;
        out.decisions = 0;

        // Dirty destinations grouped by delivery switch, in switch order —
        // legal distances are computed once per dirty group instead of
        // once per delivery switch of the whole fabric.
        let mut by_switch: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (i, d) in g.destinations().iter().enumerate() {
            if dirty.contains(&d.lid.raw()) {
                by_switch.entry(d.switch).or_default().push(i);
            }
        }
        let mut groups: Vec<(usize, Vec<usize>)> = by_switch.into_iter().collect();
        groups.sort_unstable_by_key(|(s, _)| *s);
        if groups.is_empty() {
            return Ok(out);
        }

        let workers = opts.effective_workers(groups.len());
        let mut down_data = vec![u32::MAX; groups.len() * n];
        let mut full_data = vec![u32::MAX; groups.len() * n];
        {
            let _span = observer.span("routing.up-down.distances");
            let mut rows: Vec<(&mut [u32], &mut [u32])> = down_data
                .chunks_mut(n)
                .zip(full_data.chunks_mut(n))
                .collect();
            parallel_for_each(
                &mut rows,
                workers,
                || Vec::<u32>::with_capacity(n),
                |queue, gi, (down, full)| {
                    let dsw = groups[gi].0;
                    down[dsw] = 0;
                    queue.clear();
                    queue.push(dsw as u32);
                    let mut head = 0;
                    while head < queue.len() {
                        let x = queue[head] as usize;
                        head += 1;
                        for &(y, _) in g.neighbors(x) {
                            let y = y as usize;
                            if !is_up(&lab, y, x) && down[y] == u32::MAX {
                                down[y] = down[x] + 1;
                                queue.push(y as u32);
                            }
                        }
                    }
                    full.copy_from_slice(down);
                    for &s in &order {
                        for &(v, _) in g.neighbors(s) {
                            let v = v as usize;
                            if is_up(&lab, s, v) && full[v] != u32::MAX {
                                full[s] = full[s].min(full[v].saturating_add(1));
                            }
                        }
                    }
                },
            );
        }
        for (gi, (dsw, _)) in groups.iter().enumerate() {
            let full = &full_data[gi * n..(gi + 1) * n];
            // As in the full compute: legality is only required within
            // the delivery switch's component.
            if (0..n).any(|s| comps.same(s, *dsw) && full[s] == u32::MAX) {
                return Err(IbError::Topology(format!(
                    "no legal up*/down* path to switch {dsw}"
                )));
            }
        }

        let mut decisions = 0u64;
        let mut column: Vec<Option<PortNum>> = vec![None; n];
        let mut cand: Vec<Vec<PortNum>> = vec![Vec::new(); n];
        for (gi, (dsw, dest_indices)) in groups.iter().enumerate() {
            let down = &down_data[gi * n..(gi + 1) * n];
            let full = &full_data[gi * n..(gi + 1) * n];
            // Candidate sets are shared by every LID the group delivers —
            // built once per (switch, group) pair, as in the full compute.
            for (s, c) in cand.iter_mut().enumerate() {
                c.clear();
                if s == *dsw || full[s] == u32::MAX {
                    // Delivery rows need no candidates; cross-component
                    // rows legitimately have none (the fault cut them off
                    // and their columns are cleared below).
                    continue;
                }
                if down[s] != u32::MAX {
                    for &(v, p) in g.neighbors(s) {
                        let v = v as usize;
                        if !is_up(&lab, s, v) && down[v] != u32::MAX && down[v] + 1 == down[s] {
                            c.push(p);
                        }
                    }
                } else {
                    for &(v, p) in g.neighbors(s) {
                        let v = v as usize;
                        if is_up(&lab, s, v) && full[v] != u32::MAX && full[v] + 1 == full[s] {
                            c.push(p);
                        }
                    }
                }
                c.sort_unstable();
                if c.is_empty() {
                    // Unreachable once the full-row MAX check passed; be
                    // defensive rather than panic on the modular pick.
                    return Err(IbError::Topology(format!(
                        "no legal up*/down* candidate at switch {s} toward switch {dsw}"
                    )));
                }
            }
            for &di in dest_indices {
                let dest = g.destinations()[di];
                for (s, slot) in column.iter_mut().enumerate() {
                    decisions += 1;
                    *slot = if s == *dsw {
                        Some(dest.port)
                    } else if full[s] == u32::MAX {
                        // The fault split the fabric: this switch can no
                        // longer reach the destination, so its row is
                        // cleared rather than left pointing into the lost
                        // component.
                        None
                    } else {
                        // Sticky selection: keep the installed port while
                        // it is still a legal up*/down* minimal candidate
                        // (a port into the failed link never is), so only
                        // the entries the fault invalidated move; the
                        // modular spread decides the rest.
                        let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                        match installed.filter(|p| cand[s].binary_search(p).is_ok()) {
                            Some(p) => Some(p),
                            None => Some(cand[s][dest.lid.raw() as usize % cand[s].len()]),
                        }
                    };
                }
                out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
            }
        }
        out.decisions = decisions;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::Cdg;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::irregular::{irregular, IrregularSpec};
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn routes_fat_tree() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = UpDown::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_torus_without_deadlock() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = UpDown::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        // The defining property: the CDG of the whole routing on one VL is
        // acyclic.
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let cdg = Cdg::from_tables(&g, &tables, |_| true);
        assert!(
            cdg.find_cycle().is_none(),
            "up*/down* produced a cyclic CDG"
        );
    }

    #[test]
    fn routes_irregular_without_deadlock() {
        for seed in 0..5 {
            let mut t = irregular(IrregularSpec {
                num_switches: 10,
                num_hosts: 20,
                extra_links: 7,
                seed,
            });
            assign_lids(&mut t);
            let tables = UpDown::default().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
            let g = SwitchGraph::build(&t.subnet).unwrap();
            let cdg = Cdg::from_tables(&g, &tables, |_| true);
            assert!(cdg.find_cycle().is_none(), "seed {seed} deadlocks");
        }
    }

    #[test]
    fn default_root_tie_breaks_to_lowest_index_core() {
        // Multi-core fat tree: every spine has the same (maximal) rank, so
        // the documented tie-break must pick the lowest-index one — not the
        // last maximal element `max_by_key` would keep on its own.
        let mut t = two_level(3, 2, 3);
        assign_lids(&mut t);
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let ranks = g.ranks();
        let max_rank = *ranks.iter().max().unwrap();
        let lowest_core = ranks.iter().position(|&r| r == max_rank).unwrap();
        let spine_indices: Vec<usize> = t.switch_levels[1]
            .iter()
            .map(|&s| g.index(s).unwrap())
            .collect();
        assert!(
            spine_indices
                .iter()
                .filter(|&&s| ranks[s] == max_rank)
                .count()
                > 1,
            "test needs a real tie among core switches"
        );
        assert_eq!(UpDown::default().pick_root(&g), lowest_core);
    }

    #[test]
    fn explicit_root_respected() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let engine = UpDown { root: Some(0) };
        let tables = engine.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }
}
