//! Up*/Down* routing.
//!
//! Links are oriented toward a root switch; a legal path climbs zero or
//! more *up* links, then descends zero or more *down* links, and never
//! turns upward again. The up/down restriction breaks every cycle in the
//! channel dependency graph, making Up*/Down* deadlock-free on a single
//! virtual lane on any topology — the baseline deadlock argument the
//! paper's §VI-C discussion builds on.

use std::collections::VecDeque;

use ib_subnet::{Lft, Subnet};
use ib_types::{IbError, IbResult, PortNum};
use rustc_hash::FxHashMap;

use crate::engine::RoutingEngine;
use crate::graph::SwitchGraph;
use crate::tables::{RoutingTables, VlAssignment};

/// The Up*/Down* engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct UpDown {
    /// Root switch index override; by default the highest-rank switch.
    pub root: Option<usize>,
}

/// Per-switch (level, id) label; "up" is lexicographically decreasing.
pub(crate) fn labels(g: &SwitchGraph, root: usize) -> Vec<(u32, usize)> {
    let mut level = vec![u32::MAX; g.len()];
    let mut queue = VecDeque::new();
    level[root] = 0;
    queue.push_back(root);
    while let Some(u) = queue.pop_front() {
        for &(v, _) in g.neighbors(u) {
            if level[v] == u32::MAX {
                level[v] = level[u] + 1;
                queue.push_back(v);
            }
        }
    }
    level.into_iter().enumerate().map(|(i, l)| (l, i)).collect()
}

/// Whether the move `from -> to` is an *up* move under the labels.
pub(crate) fn is_up(labels: &[(u32, usize)], from: usize, to: usize) -> bool {
    labels[to] < labels[from]
}

impl UpDown {
    /// Picks the default root: a switch of maximal rank (a core switch in a
    /// fat tree), tie-broken by lowest index.
    fn pick_root(&self, g: &SwitchGraph) -> usize {
        if let Some(r) = self.root {
            return r;
        }
        let ranks = g.ranks();
        (0..g.len())
            .max_by_key(|&s| (ranks[s] != u32::MAX) as u32 * ranks[s].wrapping_add(1))
            .unwrap_or(0)
    }
}

impl RoutingEngine for UpDown {
    fn name(&self) -> &'static str {
        "up-down"
    }

    fn compute(&self, subnet: &Subnet) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }
        let root = self.pick_root(&g);
        let lab = labels(&g, root);
        if lab.iter().any(|&(l, _)| l == u32::MAX) {
            return Err(IbError::Topology("disconnected switch graph".into()));
        }

        // Group destinations by delivery switch; compute legal distances
        // once per delivery switch.
        let mut by_switch: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (i, d) in g.destinations().iter().enumerate() {
            by_switch.entry(d.switch).or_default().push(i);
        }
        let mut groups: Vec<(usize, Vec<usize>)> = by_switch.into_iter().collect();
        groups.sort_unstable_by_key(|(s, _)| *s);

        let mut lfts: Vec<Lft> = vec![Lft::new(); g.len()];
        let mut decisions = 0u64;

        for (dsw, dest_indices) in groups {
            // down_dist[s]: shortest all-down path s -> dsw.
            // full_dist[s]: shortest up*down* path s -> dsw.
            let mut down_dist = vec![u32::MAX; g.len()];
            down_dist[dsw] = 0;
            // Reverse BFS along down edges: expand y where y->x is down.
            let mut queue = VecDeque::new();
            queue.push_back(dsw);
            while let Some(x) = queue.pop_front() {
                for &(y, _) in g.neighbors(x) {
                    // Move y -> x must be a *down* move for the path y..dsw
                    // to stay all-down.
                    if !is_up(&lab, y, x) && down_dist[y] == u32::MAX {
                        down_dist[y] = down_dist[x] + 1;
                        queue.push_back(y);
                    }
                }
            }
            // Process switches in increasing label order: all up-moves go to
            // already-finalized switches.
            let mut order: Vec<usize> = (0..g.len()).collect();
            order.sort_unstable_by_key(|&s| lab[s]);
            let mut full_dist = down_dist.clone();
            for &s in &order {
                for &(v, _) in g.neighbors(s) {
                    if is_up(&lab, s, v) && full_dist[v] != u32::MAX {
                        full_dist[s] = full_dist[s].min(full_dist[v].saturating_add(1));
                    }
                }
            }
            if full_dist.contains(&u32::MAX) {
                return Err(IbError::Topology(format!(
                    "no legal up*/down* path to switch {dsw}"
                )));
            }

            for &di in &dest_indices {
                let dest = g.destinations()[di];
                for s in 0..g.len() {
                    decisions += 1;
                    if s == dsw {
                        lfts[s].set(dest.lid, dest.port);
                        continue;
                    }
                    // The rule must compose: a packet that descended into
                    // `s` follows the same LFT row as one that just
                    // arrived climbing, so the row itself must never turn
                    // a descent back upward. Hence: **descend whenever the
                    // destination is down-reachable** (every switch on the
                    // down chain is then also down-reachable and keeps
                    // descending), and climb toward the root otherwise
                    // (the root down-reaches everything, so the climb
                    // terminates).
                    let mut candidates: Vec<PortNum> = Vec::new();
                    if down_dist[s] != u32::MAX {
                        for &(v, p) in g.neighbors(s) {
                            if !is_up(&lab, s, v)
                                && down_dist[v] != u32::MAX
                                && down_dist[v] + 1 == down_dist[s]
                            {
                                candidates.push(p);
                            }
                        }
                    } else {
                        for &(v, p) in g.neighbors(s) {
                            if is_up(&lab, s, v)
                                && full_dist[v] != u32::MAX
                                && full_dist[v] + 1 == full_dist[s]
                            {
                                candidates.push(p);
                            }
                        }
                    }
                    candidates.sort_unstable();
                    let pick = candidates[dest.lid.raw() as usize % candidates.len()];
                    lfts[s].set(dest.lid, pick);
                }
            }
        }

        let lfts = lfts
            .into_iter()
            .enumerate()
            .map(|(s, lft)| (g.node_id(s), lft))
            .collect();
        Ok(RoutingTables {
            lfts,
            vls: VlAssignment::SingleVl,
            engine: self.name(),
            decisions,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdg::Cdg;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::irregular::{irregular, IrregularSpec};
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn routes_fat_tree() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = UpDown::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_torus_without_deadlock() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = UpDown::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        // The defining property: the CDG of the whole routing on one VL is
        // acyclic.
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let cdg = Cdg::from_tables(&g, &tables, |_| true);
        assert!(
            cdg.find_cycle().is_none(),
            "up*/down* produced a cyclic CDG"
        );
    }

    #[test]
    fn routes_irregular_without_deadlock() {
        for seed in 0..5 {
            let mut t = irregular(IrregularSpec {
                num_switches: 10,
                num_hosts: 20,
                extra_links: 7,
                seed,
            });
            assign_lids(&mut t);
            let tables = UpDown::default().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
            let g = SwitchGraph::build(&t.subnet).unwrap();
            let cdg = Cdg::from_tables(&g, &tables, |_| true);
            assert!(cdg.find_cycle().is_none(), "seed {seed} deadlocks");
        }
    }

    #[test]
    fn explicit_root_respected() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let engine = UpDown { root: Some(0) };
        let tables = engine.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }
}
