//! Routing-engine output: per-switch LFTs plus a virtual-lane assignment.

use ib_subnet::{Lft, NodeId, Subnet};
use ib_types::{IbResult, Lid, PortNum, VirtualLane};
use rustc_hash::FxHashMap;

use crate::graph::SwitchGraph;

/// Converts per-switch flat staging rows (indexed by raw LID) into the
/// block-structured LFT map routing engines return. One conversion at the
/// end of a compute replaces per-entry `Lft::set` bookkeeping in the hot
/// loops; `stages[s]` becomes the table of switch `s`.
pub(crate) fn stages_to_lfts(
    g: &SwitchGraph,
    stages: Vec<Vec<Option<PortNum>>>,
) -> FxHashMap<NodeId, Lft> {
    stages
        .into_iter()
        .enumerate()
        .map(|(s, stage)| (g.node_id(s), Lft::from_dense(stage)))
        .collect()
}

/// How flows are spread across virtual lanes for deadlock freedom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VlAssignment {
    /// Everything on VL0 (engines whose routes are acyclic by
    /// construction on one lane, like Up*/Down*).
    SingleVl,
    /// Each *destination LID* is served on one VL; the per-destination
    /// routing tree lives entirely in that layer. DFSSSP's layering, and
    /// — with just VL0/VL1 — the minimal engines' isolation of
    /// switch-destined traffic from the host lane.
    PerDestination(FxHashMap<u16, VirtualLane>),
    /// LASH-style: each ordered source→destination *switch pair* is assigned
    /// a layer.
    PerSwitchPair(FxHashMap<(u32, u32), VirtualLane>),
    /// DFSSSP-style fine granularity: each (source switch, destination
    /// LID) *path* is assigned a layer. Unlisted paths ride VL0.
    PerSourceDestination(FxHashMap<(u32, u16), VirtualLane>),
}

impl VlAssignment {
    /// The VL a packet from switch-index `src` to LID `dst` travels on.
    #[must_use]
    pub fn lane_for(&self, src_switch: u32, dst_switch: u32, dst: Lid) -> VirtualLane {
        match self {
            Self::SingleVl => VirtualLane::VL0,
            Self::PerDestination(map) => map.get(&dst.raw()).copied().unwrap_or(VirtualLane::VL0),
            Self::PerSwitchPair(map) => map
                .get(&(src_switch, dst_switch))
                .copied()
                .unwrap_or(VirtualLane::VL0),
            Self::PerSourceDestination(map) => map
                .get(&(src_switch, dst.raw()))
                .copied()
                .unwrap_or(VirtualLane::VL0),
        }
    }

    /// Number of distinct lanes in use.
    #[must_use]
    pub fn lanes_used(&self) -> usize {
        match self {
            Self::SingleVl => 1,
            Self::PerDestination(map) => {
                let mut lanes: Vec<u8> = map.values().map(|v| v.raw()).collect();
                lanes.sort_unstable();
                lanes.dedup();
                lanes.len().max(1)
            }
            Self::PerSwitchPair(map) => {
                let mut lanes: Vec<u8> = map.values().map(|v| v.raw()).collect();
                lanes.sort_unstable();
                lanes.dedup();
                lanes.len().max(1)
            }
            Self::PerSourceDestination(map) => {
                let mut lanes: Vec<u8> = map.values().map(|v| v.raw()).collect();
                lanes.push(0);
                lanes.sort_unstable();
                lanes.dedup();
                lanes.len()
            }
        }
    }
}

/// The complete output of a routing computation.
#[derive(Clone, Debug)]
pub struct RoutingTables {
    /// New LFT for every switch (physical and virtual).
    pub lfts: FxHashMap<NodeId, Lft>,
    /// VL layering, if the engine produces one.
    pub vls: VlAssignment,
    /// Name of the engine that produced the tables.
    pub engine: &'static str,
    /// Number of (switch, destination) route decisions made — a
    /// machine-independent proxy for `PCt` used in tests where wall-clock
    /// would flake.
    pub decisions: u64,
}

impl RoutingTables {
    /// Snapshots the LFTs *currently installed* in the subnet — the tables
    /// packets would actually follow, as opposed to the ones an engine just
    /// planned. Switches without an installed LFT are omitted. The
    /// verification layer audits this view after sweeps and migrations.
    #[must_use]
    pub fn from_installed(subnet: &Subnet) -> Self {
        let lfts: FxHashMap<NodeId, Lft> = subnet
            .switches()
            .filter_map(|n| subnet.lft(n.id).map(|lft| (n.id, lft.clone())))
            .collect();
        Self {
            lfts,
            vls: VlAssignment::SingleVl,
            engine: "installed",
            decisions: 0,
        }
    }

    /// Overwrites one destination column across every switch's LFT: switch
    /// `sw`'s row for `lid` becomes `f(sw)` (cleared on `None`). The splice
    /// primitive of incremental repair — every other column is untouched,
    /// so a later block-diff against the installed tables only sees the
    /// repaired destinations' blocks.
    pub fn set_column(&mut self, lid: Lid, f: impl Fn(NodeId) -> Option<PortNum>) {
        for (&sw, lft) in &mut self.lfts {
            match f(sw) {
                Some(p) => lft.set(lid, p),
                None => lft.clear(lid),
            }
        }
    }

    /// Installs every LFT into the subnet directly (no SMP accounting —
    /// the subnet manager is the component that distributes with SMPs).
    pub fn install(&self, subnet: &mut Subnet) -> IbResult<()> {
        for (&sw, lft) in &self.lfts {
            subnet.set_lft(sw, lft.clone())?;
        }
        Ok(())
    }

    /// Verifies that, per these tables, every destination LID is reachable
    /// from every switch, by walking LFT hops in table space. Returns the
    /// list of `(switch, lid)` failures.
    #[must_use]
    pub fn unreachable_pairs(&self, subnet: &Subnet, max_hops: usize) -> Vec<(NodeId, Lid)> {
        let mut failures = Vec::new();
        let lids = subnet.lids();
        for &start in self.lfts.keys() {
            'dest: for &lid in &lids {
                let target = subnet.endpoint_of(lid).expect("registered LID");
                let mut cur = start;
                for _ in 0..max_hops {
                    if cur == target.node {
                        continue 'dest;
                    }
                    let Some(lft) = self.lfts.get(&cur) else {
                        failures.push((start, lid));
                        continue 'dest;
                    };
                    let Some(out) = lft.get(lid) else {
                        failures.push((start, lid));
                        continue 'dest;
                    };
                    if out.is_management() {
                        if cur == target.node {
                            continue 'dest;
                        }
                        failures.push((start, lid));
                        continue 'dest;
                    }
                    let Some(remote) = subnet.neighbor(cur, out) else {
                        failures.push((start, lid));
                        continue 'dest;
                    };
                    if remote.node == target.node {
                        continue 'dest;
                    }
                    cur = remote.node;
                }
                failures.push((start, lid));
            }
        }
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_vl_defaults() {
        let vls = VlAssignment::SingleVl;
        assert_eq!(vls.lane_for(0, 1, Lid::from_raw(5)), VirtualLane::VL0);
        assert_eq!(vls.lanes_used(), 1);
    }

    #[test]
    fn per_destination_lookup() {
        let mut map = FxHashMap::default();
        map.insert(5u16, VirtualLane::new(2).unwrap());
        let vls = VlAssignment::PerDestination(map);
        assert_eq!(vls.lane_for(0, 1, Lid::from_raw(5)).raw(), 2);
        assert_eq!(vls.lane_for(0, 1, Lid::from_raw(6)).raw(), 0);
        assert_eq!(vls.lanes_used(), 1);
    }

    #[test]
    fn per_pair_lookup() {
        let mut map = FxHashMap::default();
        map.insert((0u32, 1u32), VirtualLane::new(1).unwrap());
        map.insert((1u32, 0u32), VirtualLane::new(3).unwrap());
        let vls = VlAssignment::PerSwitchPair(map);
        assert_eq!(vls.lane_for(0, 1, Lid::from_raw(9)).raw(), 1);
        assert_eq!(vls.lanes_used(), 2);
    }
}
