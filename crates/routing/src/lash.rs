//! LASH: LAyered SHortest-path routing.
//!
//! Every ordered pair of switches gets a shortest path (drawn from one BFS
//! in-tree per destination switch, so the result is expressible as
//! destination-based LFTs), and each pair is packed into the first virtual
//! lane whose channel dependency graph stays acyclic with the path's
//! dependencies added; a new lane is opened when no existing one fits.
//!
//! The per-destination in-tree extraction and the LFT fill fan across the
//! configured workers (each tree and each switch row is independent); the
//! pair packing cannot — each placement depends on every earlier one. That
//! per-pair packing with cycle checks is why LASH is by far the most
//! expensive engine in the paper's Fig. 7 (39145 s at 11664 nodes) — the
//! same quadratic-in-switches, cycle-check-per-pair structure is faithfully
//! reproduced here, and its cost lands in the `routing.lash.vl_partition`
//! span.

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::{IbError, IbResult, PortNum, VirtualLane};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::cdg::{Cdg, Channel};
use crate::engine::{RoutingEngine, RoutingOptions};
use crate::graph::{parallel_for_each, Destination, SwitchGraph};
use crate::tables::{stages_to_lfts, RoutingTables, VlAssignment};

/// The LASH engine.
#[derive(Clone, Copy, Debug)]
pub struct Lash {
    /// Number of data VLs available for layering.
    pub max_vls: u8,
}

impl Default for Lash {
    fn default() -> Self {
        Self { max_vls: 8 }
    }
}

impl RoutingEngine for Lash {
    fn name(&self) -> &'static str {
        "lash"
    }

    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }
        let n = g.len();
        let workers = opts.effective_workers(n);

        // One deterministic BFS in-tree per switch: tree[dsw][s] = the port
        // s uses toward dsw (lowest-index parent wins ties). Trees are
        // independent, so the extraction fans across workers; each worker
        // reuses one distance buffer and one queue for all its trees.
        let mut trees: Vec<Vec<Option<PortNum>>> = vec![vec![None; n]; n];
        {
            let _span = observer.span("routing.lash.distances");
            parallel_for_each(
                &mut trees,
                workers,
                || (vec![u32::MAX; n], Vec::<u32>::with_capacity(n)),
                |(dist, queue), dsw, port_toward| {
                    dist.fill(u32::MAX);
                    dist[dsw] = 0;
                    queue.clear();
                    queue.push(dsw as u32);
                    let mut head = 0;
                    while head < queue.len() {
                        let v = queue[head] as usize;
                        head += 1;
                        // Deterministic order: neighbors as stored
                        // (builder order).
                        for &(s, _) in g.neighbors(v) {
                            let s = s as usize;
                            if dist[s] == u32::MAX {
                                dist[s] = dist[v] + 1;
                                // The port s uses toward v (first matching
                                // entry).
                                let p = g
                                    .neighbors(s)
                                    .iter()
                                    .find(|&&(x, _)| x as usize == v)
                                    .map(|&(_, p)| p)
                                    .expect("symmetric adjacency");
                                port_toward[s] = Some(p);
                                queue.push(s as u32);
                            }
                        }
                    }
                },
            );
        }
        // A `None` tree entry for s != dsw means the fabric is split and s
        // cannot reach dsw: the stage fill below leaves that LFT row empty
        // (an explicit hole) and the pair packing skips the pair — every
        // reachable pair still gets a path and a lane.

        // LFTs straight from the trees: each switch's staging row is
        // independent, so the fill fans across workers too.
        let mut stages: Vec<Vec<Option<PortNum>>> = vec![vec![None; g.lid_bound()]; n];
        parallel_for_each(
            &mut stages,
            workers,
            || (),
            |(), s, stage| {
                for dest in g.destinations() {
                    stage[dest.lid.raw() as usize] = if s == dest.switch {
                        Some(dest.port)
                    } else {
                        trees[dest.switch][s]
                    };
                }
            },
        );
        let mut decisions = (g.destinations().len() * n) as u64;

        // Pack each ordered switch pair into the first lane that stays
        // acyclic. Strictly serial: whether a pair fits lane l depends on
        // every pair placed before it. (The `dsw` index doubles as the
        // tree id, so a range loop reads clearer than enumerate here.)
        // Layers use the classic dense-matrix CDG representation
        // (see [`MatrixCdg`]) so the per-pair cycle check carries LASH's
        // characteristic quadratic-in-channels cost.
        let _span = observer.span("routing.lash.vl_partition");
        let mut channel_ids: FxHashMap<Channel, usize> = FxHashMap::default();
        for s in 0..n {
            for &(_, p) in g.neighbors(s) {
                let next = channel_ids.len();
                channel_ids.entry((s as u32, p.raw())).or_insert(next);
            }
        }
        let num_channels = channel_ids.len();
        let mut layers: Vec<MatrixCdg> = vec![MatrixCdg::new(num_channels)];
        let mut pair_lane: FxHashMap<(u32, u32), VirtualLane> = FxHashMap::default();
        let mut ids: Vec<usize> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for dsw in 0..n {
            for src in 0..n {
                if src == dsw {
                    continue;
                }
                if trees[dsw][src].is_none() {
                    // Split fabric: src cannot reach dsw, so the pair has
                    // no path and needs no lane.
                    continue;
                }
                // Materialize the channel-id path src -> dsw along the tree.
                // (Every switch on the walk is reachable once src is: the
                // in-tree is connected toward dsw.)
                ids.clear();
                let mut cur = src;
                while cur != dsw {
                    let p = trees[dsw][cur].expect("on the in-tree toward dsw");
                    ids.push(channel_ids[&(cur as u32, p.raw())]);
                    decisions += 1;
                    cur = g
                        .neighbors(cur)
                        .iter()
                        .find(|&&(_, q)| q == p)
                        .map(|&(v, _)| v as usize)
                        .expect("port leads somewhere");
                }
                let mut placed = None;
                for (l, layer) in layers.iter_mut().enumerate() {
                    if layer.try_add_path(&ids) {
                        placed = Some(l as u8);
                        break;
                    }
                }
                let lane = match placed {
                    Some(l) => l,
                    None => {
                        if layers.len() >= self.max_vls as usize {
                            return Err(IbError::Topology(format!(
                                "lash: virtual lanes exhausted ({})",
                                self.max_vls
                            )));
                        }
                        let mut fresh = MatrixCdg::new(num_channels);
                        let ok = fresh.try_add_path(&ids);
                        debug_assert!(ok, "single path cannot be cyclic");
                        layers.push(fresh);
                        (layers.len() - 1) as u8
                    }
                };
                if lane != 0 {
                    pair_lane.insert(
                        (src as u32, dsw as u32),
                        VirtualLane::new(lane).expect("lane < 15"),
                    );
                }
            }
        }

        let vls = if pair_lane.is_empty() {
            VlAssignment::SingleVl
        } else {
            VlAssignment::PerSwitchPair(pair_lane)
        };
        Ok(RoutingTables {
            lfts: stages_to_lfts(&g, stages),
            vls,
            engine: self.name(),
            decisions,
        })
    }

    /// Incremental repair: recompute BFS in-trees only for the dirty
    /// delivery switches and splice their columns into `prior`, then
    /// re-place just the re-routed switch pairs into the lane structure.
    /// Each layer's CDG is re-seeded from the clean pairs' installed
    /// paths — they coexisted acyclically under `prior`, so no cycle
    /// check is run (or wanted: the O(channels²) check is LASH's cost).
    /// A dirty pair first tries its prior lane, escalates to the
    /// CDG-checked first-fit search on conflict, opens a new lane within
    /// the budget, and only errors out (a *counted* fallback at the SM)
    /// when the budget is exhausted — the whole fabric is never
    /// re-layered.
    fn incremental_repair(&self) -> bool {
        true
    }

    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        // A usable baseline needs every switch's LFT *and* a per-pair (or
        // single-lane) assignment to re-seed the layers from.
        if g.is_empty()
            || (0..g.len()).any(|s| !prior.lfts.contains_key(&g.node_id(s)))
            || !matches!(
                prior.vls,
                VlAssignment::SingleVl | VlAssignment::PerSwitchPair(_)
            )
        {
            return self.compute_with(subnet, opts, observer);
        }
        let _span = observer.span("routing.lash.repair");
        let n = g.len();
        let dirty: FxHashSet<u16> = dirty_dests.iter().map(|l| l.raw()).collect();
        let dirty_cols: Vec<Destination> = g
            .destinations()
            .iter()
            .copied()
            .filter(|d| dirty.contains(&d.lid.raw()))
            .collect();
        let mut out = prior.clone();
        out.engine = self.name();
        out.decisions = 0;
        if dirty_cols.is_empty() {
            return Ok(out);
        }

        // Per-switch witness destination: the installed column each clean
        // pair's path is read back from (all pairs toward one delivery
        // switch ride the same in-tree, so one column per switch
        // suffices). A switch with no LID leaves its pairs' paths
        // unreconstructable — recompute instead (never the case once the
        // SM has assigned switch LIDs).
        let first_dest: Vec<Destination> = {
            let mut fd: Vec<Option<Destination>> = vec![None; n];
            for d in g.destinations() {
                if fd[d.switch].is_none() {
                    fd[d.switch] = Some(*d);
                }
            }
            if fd.iter().any(Option::is_none) {
                return self.compute_with(subnet, opts, observer);
            }
            fd.into_iter().flatten().collect()
        };

        let mut dirty_switches: Vec<usize> = dirty_cols.iter().map(|d| d.switch).collect();
        dirty_switches.sort_unstable();
        dirty_switches.dedup();
        let tree_of: FxHashMap<usize, usize> = dirty_switches
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();

        // Fresh BFS in-trees for the dirty delivery switches only — the
        // repair-sized slice of the full compute's per-switch sweep.
        let mut trees: Vec<Vec<Option<PortNum>>> = vec![vec![None; n]; dirty_switches.len()];
        {
            let _span = observer.span("routing.lash.distances");
            parallel_for_each(
                &mut trees,
                opts.effective_workers(dirty_switches.len()),
                || (vec![u32::MAX; n], Vec::<u32>::with_capacity(n)),
                |(dist, queue), ti, port_toward| {
                    let dsw = dirty_switches[ti];
                    dist.fill(u32::MAX);
                    dist[dsw] = 0;
                    queue.clear();
                    queue.push(dsw as u32);
                    let mut head = 0;
                    while head < queue.len() {
                        let v = queue[head] as usize;
                        head += 1;
                        for &(s, _) in g.neighbors(v) {
                            let s = s as usize;
                            if dist[s] == u32::MAX {
                                dist[s] = dist[v] + 1;
                                let p = g
                                    .neighbors(s)
                                    .iter()
                                    .find(|&&(x, _)| x as usize == v)
                                    .map(|&(_, p)| p)
                                    .expect("symmetric adjacency");
                                port_toward[s] = Some(p);
                                queue.push(s as u32);
                            }
                        }
                    }
                },
            );
        }
        // A `None` tree entry means the fault split the fabric: the splice
        // below *clears* that row (no stale route into the lost component)
        // and the lane re-placement drops the pair.

        // Splice the dirty columns: identical to what the full compute's
        // stage fill would produce from the same trees.
        let mut decisions = (dirty_cols.len() * n) as u64;
        for dest in &dirty_cols {
            let tree = &trees[tree_of[&dest.switch]];
            out.set_column(dest.lid, |sw| {
                g.index(sw).and_then(|s| {
                    if s == dest.switch {
                        Some(dest.port)
                    } else {
                        tree[s]
                    }
                })
            });
        }

        // Incremental lane re-assignment.
        let _span2 = observer.span("routing.lash.vl_partition");
        let mut channel_ids: FxHashMap<Channel, usize> = FxHashMap::default();
        for s in 0..n {
            for &(_, p) in g.neighbors(s) {
                let next = channel_ids.len();
                channel_ids.entry((s as u32, p.raw())).or_insert(next);
            }
        }
        let num_channels = channel_ids.len();
        let max_lane = match &prior.vls {
            VlAssignment::PerSwitchPair(map) => map.values().map(|l| l.raw()).max().unwrap_or(0),
            _ => 0,
        };
        let mut layers: Vec<MatrixCdg> = (0..=max_lane)
            .map(|_| MatrixCdg::new(num_channels))
            .collect();
        let port_to_switch: Vec<FxHashMap<u8, usize>> = (0..n)
            .map(|s| {
                g.neighbors(s)
                    .iter()
                    .map(|&(v, p)| (p.raw(), v as usize))
                    .collect()
            })
            .collect();
        let dirty_set: FxHashSet<usize> = dirty_switches.iter().copied().collect();

        // Re-seed the layers from the clean pairs' installed paths. A walk
        // that dead-ends — the entry is cleared, or the port leads into a
        // link the degraded graph no longer has — is *pre-existing damage*
        // on a pair whose own trap has not been answered yet (mid-burst,
        // serial repairs see later faults' black holes, exactly like the
        // SM's scoped verifier gate does). The surviving prefix still
        // carries in-flight traffic, so its channel dependencies are
        // seeded and the pair is otherwise left to the trap that owns it.
        // A forwarding *loop*, by contrast, means the baseline itself is
        // corrupt: error out so the SM takes its counted fallback and
        // rebuilds from scratch (keeping the reverse route index honest —
        // a silent internal recompute here would be misread as a splice).
        let mut ids: Vec<usize> = Vec::new();
        for (dsw, &dest) in first_dest.iter().enumerate() {
            if dirty_set.contains(&dsw) {
                continue;
            }
            for src in 0..n {
                if src == dsw {
                    continue;
                }
                ids.clear();
                let mut cur = src;
                let mut hops = 0;
                while cur != dsw {
                    let Some(p) = out.lfts.get(&g.node_id(cur)).and_then(|l| l.get(dest.lid))
                    else {
                        break;
                    };
                    let Some(&cid) = channel_ids.get(&(cur as u32, p.raw())) else {
                        break;
                    };
                    let Some(&next_sw) = port_to_switch[cur].get(&p.raw()) else {
                        break;
                    };
                    ids.push(cid);
                    cur = next_sw;
                    hops += 1;
                    if hops > n {
                        return Err(IbError::Topology(
                            "forwarding loop in the lash repair baseline".into(),
                        ));
                    }
                }
                let lane = prior.vls.lane_for(src as u32, dsw as u32, dest.lid).raw() as usize;
                layers[lane].add_path(&ids);
            }
        }

        // Place the dirty pairs: prior lane first (most repaired paths
        // still fit where they lived), then first-fit, then a new lane.
        let mut pair_lane: FxHashMap<(u32, u32), VirtualLane> = match &prior.vls {
            VlAssignment::PerSwitchPair(map) => map.clone(),
            _ => FxHashMap::default(),
        };
        for &dsw in &dirty_switches {
            let tree = &trees[tree_of[&dsw]];
            for src in 0..n {
                if src == dsw {
                    continue;
                }
                if tree[src].is_none() {
                    // The fault cut src off from dsw: the pair no longer
                    // has a path, so it holds no lane either.
                    pair_lane.remove(&(src as u32, dsw as u32));
                    continue;
                }
                ids.clear();
                let mut cur = src;
                while cur != dsw {
                    let p = tree[cur].expect("on the in-tree toward dsw");
                    ids.push(channel_ids[&(cur as u32, p.raw())]);
                    decisions += 1;
                    cur = g
                        .neighbors(cur)
                        .iter()
                        .find(|&&(_, q)| q == p)
                        .map(|&(v, _)| v as usize)
                        .expect("port leads somewhere");
                }
                let prior_lane = prior
                    .vls
                    .lane_for(src as u32, dsw as u32, first_dest[dsw].lid)
                    .raw() as usize;
                let mut placed = None;
                if layers[prior_lane].try_add_path(&ids) {
                    placed = Some(prior_lane as u8);
                } else {
                    for (l, layer) in layers.iter_mut().enumerate() {
                        if l != prior_lane && layer.try_add_path(&ids) {
                            placed = Some(l as u8);
                            break;
                        }
                    }
                }
                let lane = match placed {
                    Some(l) => l,
                    None => {
                        if layers.len() >= self.max_vls as usize {
                            return Err(IbError::Topology(format!(
                                "lash: virtual lanes exhausted ({}) during repair",
                                self.max_vls
                            )));
                        }
                        let mut fresh = MatrixCdg::new(num_channels);
                        let ok = fresh.try_add_path(&ids);
                        debug_assert!(ok, "single path cannot be cyclic");
                        layers.push(fresh);
                        (layers.len() - 1) as u8
                    }
                };
                if lane != 0 {
                    pair_lane.insert(
                        (src as u32, dsw as u32),
                        VirtualLane::new(lane).expect("lane < 15"),
                    );
                } else {
                    pair_lane.remove(&(src as u32, dsw as u32));
                }
            }
        }

        out.vls = if pair_lane.is_empty() {
            VlAssignment::SingleVl
        } else {
            VlAssignment::PerSwitchPair(pair_lane)
        };
        out.decisions = decisions;
        Ok(out)
    }
}

/// A channel dependency graph stored as a dense adjacency matrix, the
/// representation classic LASH implementations use: the cycle check after
/// each tentative pair placement walks matrix rows, costing
/// O(channels²) per pair. That quadratic check, run for every ordered
/// switch pair, is precisely what makes LASH the most expensive engine in
/// the paper's Fig. 7 (39145 s at 11664 nodes) — the incremental
/// reachability test of [`Cdg::try_add_path`] would be algorithmically
/// equivalent but would not reproduce that cost profile.
struct MatrixCdg {
    n: usize,
    adj: Vec<bool>,
}

impl MatrixCdg {
    fn new(n: usize) -> Self {
        Self {
            n,
            adj: vec![false; n * n],
        }
    }

    #[inline]
    fn has(&self, a: usize, b: usize) -> bool {
        self.adj[a * self.n + b]
    }

    /// Full-matrix DFS cycle search (three-color, iterative).
    fn has_cycle(&self) -> bool {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.n];
        let mut stack: Vec<(usize, usize)> = Vec::new();
        for start in 0..self.n {
            if color[start] != WHITE {
                continue;
            }
            color[start] = GRAY;
            stack.push((start, 0));
            while let Some(&mut (u, ref mut next)) = stack.last_mut() {
                // Scan the row for the next successor.
                let mut advanced = false;
                while *next < self.n {
                    let v = *next;
                    *next += 1;
                    if !self.has(u, v) {
                        continue;
                    }
                    match color[v] {
                        WHITE => {
                            color[v] = GRAY;
                            stack.push((v, 0));
                            advanced = true;
                            break;
                        }
                        GRAY => return true,
                        _ => {}
                    }
                }
                if !advanced && stack.last().map(|&(u2, n2)| (u2, n2 >= self.n)) == Some((u, true))
                {
                    color[u] = BLACK;
                    stack.pop();
                }
            }
        }
        false
    }

    /// Adds the consecutive dependencies of a channel-id path with **no**
    /// cycle check — for re-seeding a layer from paths that already
    /// coexisted acyclically in an installed assignment, where re-running
    /// the quadratic check would defeat the point of incremental repair.
    fn add_path(&mut self, ids: &[usize]) {
        for w in ids.windows(2) {
            self.adj[w[0] * self.n + w[1]] = true;
        }
    }

    /// Adds the consecutive dependencies of a channel-id path, runs the
    /// full cycle check, and rolls back if a cycle appeared.
    fn try_add_path(&mut self, ids: &[usize]) -> bool {
        let mut new_edges = Vec::new();
        for w in ids.windows(2) {
            let (a, b) = (w[0], w[1]);
            if !self.has(a, b) {
                self.adj[a * self.n + b] = true;
                new_edges.push((a, b));
            }
        }
        if self.has_cycle() {
            for (a, b) in new_edges {
                self.adj[a * self.n + b] = false;
            }
            false
        } else {
            true
        }
    }
}

/// Verifies deadlock freedom of a LASH result: for every lane, re-derive
/// the CDG from the per-pair assignment and check acyclicity.
pub fn verify_pair_layers_acyclic(subnet: &Subnet, tables: &RoutingTables) -> IbResult<()> {
    let g = SwitchGraph::build(subnet)?;
    let lanes_in_use: Vec<u8> = match &tables.vls {
        VlAssignment::SingleVl => vec![0],
        VlAssignment::PerSwitchPair(map) => {
            let mut v: Vec<u8> = map.values().map(|l| l.raw()).collect();
            v.push(0);
            v.sort_unstable();
            v.dedup();
            v
        }
        VlAssignment::PerDestination(_) | VlAssignment::PerSourceDestination(_) => {
            return Err(IbError::Topology(
                "expected a per-pair assignment from LASH".into(),
            ))
        }
    };

    for lane in lanes_in_use {
        let mut cdg = Cdg::new();
        // Walk every pair on this lane and absorb its path dependencies.
        for dsw in 0..g.len() {
            let Some(dest) = g.destinations().iter().find(|d| d.switch == dsw) else {
                continue;
            };
            for src in 0..g.len() {
                if src == dsw {
                    continue;
                }
                if tables.vls.lane_for(src as u32, dsw as u32, dest.lid).raw() != lane {
                    continue;
                }
                let mut cur = src;
                let mut prev: Option<usize> = None;
                let mut hops = 0;
                while cur != dsw {
                    // A missing row means the pair is unrouted (a split
                    // fabric): no path, no dependencies to absorb.
                    let Some(p) = tables.lfts[&g.node_id(cur)].get(dest.lid) else {
                        break;
                    };
                    let ch = cdg.intern((cur as u32, p.raw()));
                    if let Some(pr) = prev {
                        cdg.add_edge(pr, ch, dest.lid.raw());
                    }
                    prev = Some(ch);
                    cur = g
                        .neighbors(cur)
                        .iter()
                        .find(|&&(_, q)| q == p)
                        .map(|&(v, _)| v as usize)
                        .expect("port leads to a switch");
                    hops += 1;
                    if hops > g.len() {
                        return Err(IbError::Topology("routing loop".into()));
                    }
                }
            }
        }
        if let Some(cycle) = cdg.find_cycle() {
            return Err(IbError::Topology(format!(
                "LASH lane {lane} has a {}-channel cycle",
                cycle.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::irregular::{irregular, IrregularSpec};
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn fat_tree_routes_on_one_lane() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = Lash::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        assert_eq!(tables.vls, VlAssignment::SingleVl);
    }

    #[test]
    fn torus_needs_multiple_lanes_and_stays_acyclic() {
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let tables = Lash::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        assert!(
            matches!(tables.vls, VlAssignment::PerSwitchPair(_)),
            "a 4x4 torus cannot fit one lane under shortest-path routing"
        );
        verify_pair_layers_acyclic(&t.subnet, &tables).unwrap();
    }

    #[test]
    fn irregular_layers_acyclic() {
        for seed in 0..3 {
            let mut t = irregular(IrregularSpec {
                num_switches: 8,
                num_hosts: 16,
                extra_links: 6,
                seed,
            });
            assign_lids(&mut t);
            let tables = Lash::default().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
            verify_pair_layers_acyclic(&t.subnet, &tables).unwrap();
        }
    }

    #[test]
    fn single_vl_budget_fails_on_torus() {
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let engine = Lash { max_vls: 1 };
        assert!(engine.compute(&t.subnet).is_err());
    }
}
