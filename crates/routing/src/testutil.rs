//! Test support shared by engine unit tests, integration tests, and benches.

#![allow(missing_docs)]

use ib_subnet::topology::BuiltTopology;
use ib_subnet::Subnet;
use ib_types::{Lid, PortNum};

use crate::tables::RoutingTables;

/// Assigns LIDs the way the subnet manager would: switches first (in
/// builder order), then host ports, densely from 1.
pub fn assign_lids(t: &mut BuiltTopology) {
    let mut next = 1u16;
    for sw in t.all_switches() {
        t.subnet
            .assign_switch_lid(sw, Lid::from_raw(next))
            .expect("switch LID");
        next += 1;
    }
    for &h in &t.hosts.clone() {
        t.subnet
            .assign_port_lid(h, PortNum::new(1), Lid::from_raw(next))
            .expect("host LID");
        next += 1;
    }
}

/// LID of a host node assigned by [`assign_lids`].
pub fn host_lid(t: &BuiltTopology, host_index: usize) -> Lid {
    t.subnet.node(t.hosts[host_index]).ports[1]
        .lid
        .expect("host LID assigned")
}

/// Asserts every destination LID is reachable from every switch under the
/// given tables, panicking with the offending pairs otherwise.
pub fn assert_full_reachability(subnet: &Subnet, tables: &RoutingTables) {
    let failures = tables.unreachable_pairs(subnet, 64);
    assert!(
        failures.is_empty(),
        "{} unreachable (switch, LID) pairs under {}: first few: {:?}",
        failures.len(),
        tables.engine,
        &failures[..failures.len().min(5)]
    );
}
