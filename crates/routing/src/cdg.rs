//! Channel dependency graphs (CDGs) and cycle search.
//!
//! A *channel* is a directed switch-to-switch link `(switch, out-port)`. A
//! dependency `A → B` exists when some routed packet may hold channel `A`
//! while requesting channel `B`. Deadlock freedom on a virtual lane is
//! equivalent to the acyclicity of that lane's CDG (Duato, 1996 — reference
//! [20] of the paper); DFSSSP and LASH both enforce it constructively, and
//! §VI-C's transition analysis asks the same question of the *union*
//! `R_old ∪ R_new` while a live migration is in flight.

use rustc_hash::{FxHashMap, FxHashSet};

use ib_types::PortNum;

use crate::graph::{Destination, SwitchGraph};
use crate::tables::RoutingTables;

/// A directed switch-to-switch channel.
pub type Channel = (u32, u8);

/// A channel dependency graph with interned channels, edge witnesses, and
/// cycle search.
#[derive(Clone, Debug, Default)]
pub struct Cdg {
    channels: Vec<Channel>,
    index: FxHashMap<Channel, usize>,
    /// Adjacency sets (dedup'd).
    out: Vec<FxHashSet<usize>>,
    /// One destination LID that contributes each edge (first writer wins) —
    /// the handle DFSSSP uses to lift a flow out of a cycle.
    witness: FxHashMap<(usize, usize), u16>,
    /// Finer-grained witness: one (source switch, destination LID) path
    /// per edge, for per-path lifting.
    pair_witness: FxHashMap<(usize, usize), (u32, u16)>,
    /// A switch-LID-destination witness per edge, when one exists — the
    /// productive kind to lift, since host in-trees are jointly acyclic on
    /// up*-down* fabrics and only switch-LID paths close cycles there.
    switch_witness: FxHashMap<(usize, usize), (u32, u16)>,
    /// Number of paths contributing each edge (Domke's edge weight: the
    /// cheapest edge of a cycle to dissolve is the least-used one).
    edge_count: FxHashMap<(usize, usize), u32>,
    num_edges: usize,
}

impl Cdg {
    /// An empty CDG.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a channel, returning its dense id.
    pub fn intern(&mut self, ch: Channel) -> usize {
        if let Some(&i) = self.index.get(&ch) {
            return i;
        }
        let i = self.channels.len();
        self.channels.push(ch);
        self.index.insert(ch, i);
        self.out.push(FxHashSet::default());
        i
    }

    /// The channel behind a dense id.
    #[must_use]
    pub fn channel(&self, id: usize) -> Channel {
        self.channels[id]
    }

    /// Adds a dependency edge; `witness` names one destination LID whose
    /// routes induce it. Returns true if the edge was new.
    pub fn add_edge(&mut self, from: usize, to: usize, witness: u16) -> bool {
        if self.out[from].insert(to) {
            self.witness.insert((from, to), witness);
            self.num_edges += 1;
            true
        } else {
            false
        }
    }

    /// Removes an edge (used by LASH to roll back a tentative path).
    pub fn remove_edge(&mut self, from: usize, to: usize) {
        if self.out[from].remove(&to) {
            self.witness.remove(&(from, to));
            self.pair_witness.remove(&(from, to));
            self.switch_witness.remove(&(from, to));
            self.edge_count.remove(&(from, to));
            self.num_edges -= 1;
        }
    }

    /// Number of channels.
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// Number of dependency edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The witness LID of an edge, if recorded.
    #[must_use]
    pub fn witness_of(&self, from: usize, to: usize) -> Option<u16> {
        self.witness.get(&(from, to)).copied()
    }

    /// Adds an edge witnessed by a (source switch, destination LID) path.
    /// Returns true if the edge was new.
    pub fn add_pair_edge(&mut self, from: usize, to: usize, pair: (u32, u16)) -> bool {
        let fresh = self.add_edge(from, to, pair.1);
        if fresh {
            self.pair_witness.insert((from, to), pair);
        }
        *self.edge_count.entry((from, to)).or_insert(0) += 1;
        fresh
    }

    /// Number of paths contributing an edge (only tracked for edges added
    /// through [`Cdg::add_pair_edge`]).
    #[must_use]
    pub fn edge_count_of(&self, from: usize, to: usize) -> u32 {
        self.edge_count.get(&(from, to)).copied().unwrap_or(0)
    }

    /// The (source switch, destination LID) witness of an edge.
    #[must_use]
    pub fn pair_witness_of(&self, from: usize, to: usize) -> Option<(u32, u16)> {
        self.pair_witness.get(&(from, to)).copied()
    }

    /// Records a switch-LID witness for an edge.
    pub fn add_switch_witness(&mut self, from: usize, to: usize, pair: (u32, u16)) {
        self.switch_witness.entry((from, to)).or_insert(pair);
    }

    /// The switch-LID witness of an edge, if any path to a switch LID
    /// contributes it.
    #[must_use]
    pub fn switch_pair_witness_of(&self, from: usize, to: usize) -> Option<(u32, u16)> {
        self.switch_witness.get(&(from, to)).copied()
    }

    /// Finds a dependency cycle, returned as a channel-id sequence where
    /// each element depends on the next and the last depends on the first.
    /// Returns `None` when the CDG is acyclic.
    #[must_use]
    pub fn find_cycle(&self) -> Option<Vec<usize>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.channels.len();
        let mut color = vec![WHITE; n];
        let mut parent = vec![usize::MAX; n];

        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            // Iterative DFS with explicit stack of (node, iterator state).
            let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            color[start] = GRAY;
            let succ: Vec<usize> = self.out[start].iter().copied().collect();
            stack.push((start, succ, 0));
            while let Some((u, succ, i)) = stack.last_mut() {
                if *i >= succ.len() {
                    color[*u] = BLACK;
                    stack.pop();
                    continue;
                }
                let v = succ[*i];
                *i += 1;
                let u = *u;
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        parent[v] = u;
                        let next: Vec<usize> = self.out[v].iter().copied().collect();
                        stack.push((v, next, 0));
                    }
                    GRAY => {
                        // Back edge u -> v: cycle v .. u.
                        let mut cycle = vec![u];
                        let mut cur = u;
                        while cur != v {
                            cur = parent[cur];
                            cycle.push(cur);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Collects every back edge found in one full DFS sweep — one edge per
    /// reachable cycle family. Lifting one witness per back edge (rather
    /// than one per [`Cdg::find_cycle`] invocation) lets DFSSSP converge
    /// in a handful of passes instead of one rebuild per lifted path.
    #[must_use]
    pub fn find_back_edges(&self) -> Vec<(usize, usize)> {
        self.find_cycles()
            .into_iter()
            .map(|c| c[c.len() - 1])
            .collect()
    }

    /// Like [`Cdg::find_back_edges`], but returns the *full edge list* of
    /// each detected cycle (reconstructed from the DFS parent chain; the
    /// closing back edge is last). Callers can then pick the most
    /// productive edge of each cycle to lift.
    #[must_use]
    pub fn find_cycles(&self) -> Vec<Vec<(usize, usize)>> {
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let n = self.channels.len();
        let mut color = vec![WHITE; n];
        let mut parent = vec![usize::MAX; n];
        let mut cycles = Vec::new();
        for start in 0..n {
            if color[start] != WHITE {
                continue;
            }
            let mut stack: Vec<(usize, Vec<usize>, usize)> = Vec::new();
            color[start] = GRAY;
            let succ: Vec<usize> = self.out[start].iter().copied().collect();
            stack.push((start, succ, 0));
            while let Some((u, succ, i)) = stack.last_mut() {
                if *i >= succ.len() {
                    color[*u] = BLACK;
                    stack.pop();
                    continue;
                }
                let v = succ[*i];
                *i += 1;
                let u = *u;
                match color[v] {
                    WHITE => {
                        color[v] = GRAY;
                        parent[v] = u;
                        let next: Vec<usize> = self.out[v].iter().copied().collect();
                        stack.push((v, next, 0));
                    }
                    GRAY => {
                        // Back edge u -> v closes the cycle v ..-> u -> v.
                        let mut nodes = vec![u];
                        let mut cur = u;
                        while cur != v {
                            cur = parent[cur];
                            nodes.push(cur);
                        }
                        nodes.reverse(); // v .. u
                        let mut edges: Vec<(usize, usize)> =
                            nodes.windows(2).map(|w| (w[0], w[1])).collect();
                        edges.push((u, v));
                        cycles.push(edges);
                    }
                    _ => {}
                }
            }
        }
        cycles
    }

    /// Builds the CDG induced by `tables` over the destinations passing
    /// `filter` (e.g. "destinations on VL 2").
    #[must_use]
    pub fn from_tables(
        g: &SwitchGraph,
        tables: &RoutingTables,
        filter: impl Fn(&Destination) -> bool,
    ) -> Self {
        let mut cdg = Self::new();
        cdg.absorb_tables(g, tables, filter);
        cdg
    }

    /// Builds the CDG of the *union* of several routing functions — the
    /// §VI-C transition analysis: `R_old ∪ R_new` may deadlock even when
    /// each is deadlock-free alone.
    #[must_use]
    pub fn from_union(
        g: &SwitchGraph,
        tables: &[&RoutingTables],
        filter: impl Fn(&Destination) -> bool,
    ) -> Self {
        let mut cdg = Self::new();
        for t in tables {
            cdg.absorb_tables(g, t, &filter);
        }
        cdg
    }

    /// Adds the dependencies induced by one routing function.
    pub fn absorb_tables(
        &mut self,
        g: &SwitchGraph,
        tables: &RoutingTables,
        filter: impl Fn(&Destination) -> bool,
    ) {
        // Per-switch port -> neighbor-switch map.
        let port_to_switch: Vec<FxHashMap<u8, usize>> = (0..g.len())
            .map(|s| {
                g.neighbors(s)
                    .iter()
                    .map(|&(v, p)| (p.raw(), v as usize))
                    .collect()
            })
            .collect();

        for dest in g.destinations().iter().filter(|d| filter(d)) {
            // next_port[s]: the out-port switch s uses for this LID, if it
            // leads to another switch.
            let mut next: Vec<Option<(u8, usize)>> = vec![None; g.len()];
            for (s, n) in next.iter_mut().enumerate() {
                let Some(lft) = tables.lfts.get(&g.node_id(s)) else {
                    continue;
                };
                if let Some(p) = lft.get(dest.lid) {
                    if p != PortNum::MANAGEMENT {
                        if let Some(&v) = port_to_switch[s].get(&p.raw()) {
                            *n = Some((p.raw(), v));
                        }
                    }
                }
            }
            for s in 0..g.len() {
                let Some((p, v)) = next[s] else { continue };
                let Some((p2, _)) = next[v] else { continue };
                // A packet to `dest` may hold (s, p) while requesting
                // (v, p2).
                let a = self.intern((s as u32, p));
                let b = self.intern((v as u32, p2));
                self.add_edge(a, b, dest.lid.raw());
            }
        }
    }

    /// Whether `to` is reachable from `from` along dependency edges.
    #[must_use]
    pub fn reachable(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut seen = FxHashSet::default();
        let mut stack = vec![from];
        seen.insert(from);
        while let Some(u) = stack.pop() {
            for &v in &self.out[u] {
                if v == to {
                    return true;
                }
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        false
    }

    /// Tentatively adds the consecutive dependencies of a channel path.
    /// If a cycle would result, rolls back the newly-added edges and
    /// returns `false`. (The LASH layer-packing primitive.)
    ///
    /// Assumes the CDG is acyclic on entry (the invariant LASH maintains):
    /// a new cycle must then pass through a new edge `(a, b)`, which exists
    /// exactly when `a` was already reachable from `b`.
    pub fn try_add_path(&mut self, path: &[Channel], witness: u16) -> bool {
        let mut new_edges = Vec::new();
        for pair in path.windows(2) {
            let a = self.intern(pair[0]);
            let b = self.intern(pair[1]);
            if self.out[a].contains(&b) {
                continue;
            }
            if self.reachable(b, a) {
                for (x, y) in new_edges {
                    self.remove_edge(x, y);
                }
                return false;
            }
            self.add_edge(a, b, witness);
            new_edges.push((a, b));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhop::MinHop;
    use crate::testutil::assign_lids;
    use crate::RoutingEngine;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn manual_cycle_detection() {
        let mut cdg = Cdg::new();
        let a = cdg.intern((0, 1));
        let b = cdg.intern((1, 1));
        let c = cdg.intern((2, 1));
        cdg.add_edge(a, b, 1);
        cdg.add_edge(b, c, 2);
        assert!(cdg.find_cycle().is_none());
        cdg.add_edge(c, a, 3);
        let cycle = cdg.find_cycle().unwrap();
        assert_eq!(cycle.len(), 3);
        // Each element must depend on the next (cyclically).
        for i in 0..cycle.len() {
            let from = cycle[i];
            let to = cycle[(i + 1) % cycle.len()];
            assert!(cdg.out[from].contains(&to));
        }
    }

    #[test]
    fn witnesses_recorded() {
        let mut cdg = Cdg::new();
        let a = cdg.intern((0, 1));
        let b = cdg.intern((1, 2));
        assert!(cdg.add_edge(a, b, 42));
        assert!(!cdg.add_edge(a, b, 43), "duplicate edge");
        assert_eq!(cdg.witness_of(a, b), Some(42));
        cdg.remove_edge(a, b);
        assert_eq!(cdg.num_edges(), 0);
        assert_eq!(cdg.witness_of(a, b), None);
    }

    #[test]
    fn fat_tree_minhop_is_acyclic_per_lane() {
        // Host routes ascend then descend the tree (acyclic on VL0);
        // switch-destined columns are up*/down*-legal on their own lane
        // (acyclic on VL1). Only the per-lane CDGs matter for deadlock —
        // a cycle cannot span two lanes.
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let g = SwitchGraph::build(&t.subnet).unwrap();
        for lane in [0u8, 1] {
            let cdg = Cdg::from_tables(&g, &tables, |d| {
                tables.vls.lane_for(0, 0, d.lid).raw() == lane
            });
            assert!(cdg.num_edges() > 0, "lane {lane}");
            assert!(cdg.find_cycle().is_none(), "lane {lane}");
        }
    }

    #[test]
    fn torus_minhop_is_cyclic() {
        // Plain shortest-path routing on a ring deadlocks: the CDG around
        // each ring closes on itself.
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let cdg = Cdg::from_tables(&g, &tables, |_| true);
        assert!(
            cdg.find_cycle().is_some(),
            "min-hop on a 4x4 torus should produce a cyclic CDG"
        );
    }

    #[test]
    fn try_add_path_rolls_back() {
        let mut cdg = Cdg::new();
        assert!(cdg.try_add_path(&[(0, 1), (1, 1), (2, 1)], 7));
        let edges_before = cdg.num_edges();
        // Closing the loop must be refused and leave the CDG unchanged.
        assert!(!cdg.try_add_path(&[(2, 1), (0, 1), (1, 1)], 8));
        assert_eq!(cdg.num_edges(), edges_before);
        assert!(cdg.find_cycle().is_none());
    }
}
