//! # ib-routing
//!
//! Routing engines for InfiniBand subnets, modeled after the OpenSM engines
//! the paper benchmarks in Fig. 7, plus the machinery to reason about
//! deadlock freedom:
//!
//! * [`minhop`] — OpenSM's default Min-Hop engine: all-pairs shortest paths
//!   with per-port load balancing.
//! * [`ftree`] — structured fat-tree routing: fast, exploits tree ranks.
//! * [`updn`] — Up*/Down*: deadlock-free by link direction restriction.
//! * [`dfsssp`] — deadlock-free SSSP routing: shortest paths, then cycles in
//!   the channel dependency graph are broken by lifting destinations onto
//!   higher virtual lanes.
//! * [`lash`] — LASH: per-switch-pair shortest paths packed into the fewest
//!   acyclic VL layers.
//! * [`cdg`] — channel dependency graphs, cycle search, and the transition
//!   (`R_old ∪ R_new`) analysis used by §VI-C of the paper.
//!
//! Every engine is a pure function `&Subnet -> RoutingTables`; nothing here
//! mutates the subnet. The subnet manager (crate `ib-sm`) applies tables and
//! accounts the SMPs; the engines only *compute* — which is exactly the
//! `PCt` term of the paper's equation 1.
//!
//! Engines run single-threaded by default; [`RoutingOptions`] (threaded
//! through [`RoutingEngine::compute_with`]) fans the embarrassingly
//! parallel phases across scoped worker threads. The serial,
//! order-sensitive phases are never split, so the produced tables are
//! byte-identical for every worker count — pinned by
//! `tests/parallel_compute.rs`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod balance;
pub mod cdg;
pub mod dfsssp;
pub mod engine;
pub mod ftree;
pub mod graph;
pub mod lash;
pub mod minhop;
pub(crate) mod swcols;
pub mod tables;
#[doc(hidden)]
pub mod testutil;
pub mod updn;

pub use engine::{EngineKind, RoutingEngine, RoutingOptions};
pub use graph::{BfsScratch, Components, Destination, DistanceMatrix, SwitchGraph};
pub use tables::{RoutingTables, VlAssignment};
