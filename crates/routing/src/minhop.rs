//! Min-Hop routing: OpenSM's default engine.
//!
//! All-pairs shortest switch distances — one BFS per source switch, fanned
//! across the configured workers since each row is independent — then for
//! every destination LID each switch picks the least-loaded among its
//! minimal next-hop ports. Load balancing is the sequential,
//! destination-ordered port-counting scheme OpenSM uses, so the computation
//! has an inherently serial phase on top of the parallel distance matrix —
//! one reason Min-Hop costs more than structured fat-tree routing in
//! Fig. 7.
//!
//! Switch-destined LIDs are routed up*/down*-legally on a dedicated
//! lane (see [`crate::swcols`]) — least-loaded valleys between sibling
//! spines would otherwise close credit loops on the host lane.

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::{IbError, IbResult, PortNum};
use rustc_hash::FxHashMap;

use crate::engine::{RoutingEngine, RoutingOptions};
use crate::graph::{DistanceMatrix, SwitchGraph};
use crate::swcols::{switch_dest_vls, SwitchColumns};
use crate::tables::{stages_to_lfts, RoutingTables, VlAssignment};

/// The Min-Hop engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinHop;

impl RoutingEngine for MinHop {
    fn name(&self) -> &'static str {
        "minhop"
    }

    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }

        // Parallel all-pairs BFS: row s = distances from switch s. Rows
        // depend only on their source, so the matrix is identical for any
        // worker count.
        let dist = {
            let _span = observer.span("routing.minhop.distances");
            DistanceMatrix::all_pairs(&g, opts.effective_workers(g.len()))
        };

        // Switch-destined columns are valley-routed via the hub on their
        // own lane instead of load-balanced: a spine-to-spine route must
        // dip through a leaf, and two such valleys through different
        // leaves close a credit loop (see `swcols`). They take no part
        // in the port-load accounting below.
        let swcols = SwitchColumns::new(&g, opts.effective_workers(g.len()));

        // Serial assignment: OpenSM's destination-ordered port-load
        // balancing. Each pick reads the loads left by every earlier pick,
        // so this phase stays single-threaded to keep tables byte-identical
        // whatever `opts.workers` says.
        let _span = observer.span("routing.minhop.assign");
        let mut stages: Vec<Vec<Option<PortNum>>> = vec![vec![None; g.lid_bound()]; g.len()];
        // port_load[s * stride + p] = destinations already routed out port
        // p of switch s.
        let stride = 2 + g.neighbors_max_port().unwrap_or(PortNum::MANAGEMENT).raw() as usize;
        let mut port_load: Vec<u64> = vec![0; stride * g.len()];
        let mut decisions = 0u64;

        for dest in g.destinations() {
            let lid_idx = dest.lid.raw() as usize;
            for s in 0..g.len() {
                decisions += 1;
                if s == dest.switch {
                    stages[s][lid_idx] = Some(dest.port);
                    continue;
                }
                if dest.port == PortNum::MANAGEMENT {
                    // Switch LID: legal pick (None across a split).
                    stages[s][lid_idx] = swcols.pick(dest.switch, dest.lid, s);
                    continue;
                }
                let d_here = dist.row(s)[dest.switch];
                if d_here == u32::MAX {
                    // The destination sits in another component (a split
                    // fabric): the column stays `None` here — an explicit
                    // hole, not a stale route — and routing proceeds for
                    // every reachable pair.
                    continue;
                }
                // Minimal candidates: neighbors exactly one hop closer.
                let mut best: Option<(u64, PortNum)> = None;
                for &(v, p) in g.neighbors(s) {
                    if dist.row(v as usize)[dest.switch] + 1 == d_here {
                        let load = port_load[s * stride + p.raw() as usize];
                        let better = match best {
                            None => true,
                            Some((bl, bp)) => load < bl || (load == bl && p < bp),
                        };
                        if better {
                            best = Some((load, p));
                        }
                    }
                }
                let (_, port) =
                    best.ok_or_else(|| IbError::Topology("distance inversion".into()))?;
                port_load[s * stride + port.raw() as usize] += 1;
                stages[s][lid_idx] = Some(port);
            }
        }

        Ok(RoutingTables {
            lfts: stages_to_lfts(&g, stages),
            vls: switch_dest_vls(&g),
            engine: self.name(),
            decisions,
        })
    }

    /// Incremental repair: BFS only from the dirty destinations' delivery
    /// switches, re-assign only the dirty columns, splice into `prior`.
    ///
    /// Port loads are seeded from the clean columns kept from `prior`, so
    /// the repaired picks balance against the traffic that stays put. The
    /// result approximates (it is not byte-equal to) a full recompute —
    /// which is exactly why the SM gates every repair behind the fabric
    /// verifier before trusting it.
    fn incremental_repair(&self) -> bool {
        true
    }

    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        // No usable baseline (or nothing to route): not an error, just no
        // savings to be had — do the full compute.
        if g.is_empty() || (0..g.len()).any(|s| !prior.lfts.contains_key(&g.node_id(s))) {
            return self.compute_with(subnet, opts, observer);
        }
        let _span = observer.span("routing.minhop.repair");
        let dirty: rustc_hash::FxHashSet<u16> = dirty_dests.iter().map(|l| l.raw()).collect();
        // Destination order is preserved from the full compute, so the
        // serial balancing below stays deterministic for any worker count.
        let dirty_dests: Vec<crate::graph::Destination> = g
            .destinations()
            .iter()
            .copied()
            .filter(|d| dirty.contains(&d.lid.raw()))
            .collect();
        let mut out = prior.clone();
        out.engine = self.name();
        out.vls = switch_dest_vls(g);
        out.decisions = 0;
        if dirty_dests.is_empty() {
            return Ok(out);
        }

        // Switch-destined dirty columns rebuild their valley routes on
        // the degraded graph (see `swcols`); they never touch the port
        // loads.
        let swcols = dirty_dests
            .iter()
            .any(|d| d.port == PortNum::MANAGEMENT)
            .then(|| SwitchColumns::new(g, opts.effective_workers(g.len())));

        let stride = 2 + g.neighbors_max_port().unwrap_or(PortNum::MANAGEMENT).raw() as usize;
        let mut port_load: Vec<u64> = vec![0; stride * g.len()];
        for dest in g.destinations() {
            // Switch-destined columns take no part in the full compute's
            // load accounting, so they must not seed the repair's either.
            if dirty.contains(&dest.lid.raw()) || dest.port == PortNum::MANAGEMENT {
                continue;
            }
            for s in 0..g.len() {
                // Delivery rows never increment load in the full compute.
                if s == dest.switch {
                    continue;
                }
                if let Some(p) = prior.lfts[&g.node_id(s)].get(dest.lid) {
                    let idx = s * stride + p.raw() as usize;
                    if idx < port_load.len() {
                        port_load[idx] += 1;
                    }
                }
            }
        }

        // BFS only from the dirty HCA-destined delivery switches
        // (distances are symmetric: row(dsw)[s] == dist(s -> dsw)).
        let mut dirty_switches: Vec<usize> = dirty_dests
            .iter()
            .filter(|d| d.port != PortNum::MANAGEMENT)
            .map(|d| d.switch)
            .collect();
        dirty_switches.sort_unstable();
        dirty_switches.dedup();
        let row_of: FxHashMap<usize, usize> = dirty_switches
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let dist = DistanceMatrix::for_sources(
            g,
            &dirty_switches,
            opts.effective_workers(dirty_switches.len()),
        );

        let mut decisions = 0u64;
        let mut column: Vec<Option<PortNum>> = vec![None; g.len()];
        for dest in &dirty_dests {
            if dest.port == PortNum::MANAGEMENT {
                for (s, slot) in column.iter_mut().enumerate() {
                    decisions += 1;
                    *slot = if s == dest.switch {
                        Some(dest.port)
                    } else {
                        // Sticky: keep the installed port while it is
                        // still valley-legal on the degraded graph, so
                        // the splice rewrites only what the fault broke.
                        let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                        swcols
                            .as_ref()
                            .and_then(|sw| sw.sticky_pick(dest.switch, dest.lid, s, installed))
                    };
                }
                out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
                continue;
            }
            let row = dist.row(row_of[&dest.switch]);
            for (s, slot) in column.iter_mut().enumerate() {
                decisions += 1;
                if s == dest.switch {
                    *slot = Some(dest.port);
                    continue;
                }
                let d_here = row[s];
                if d_here == u32::MAX {
                    // The fault split the fabric: this switch can no longer
                    // reach the destination, so its row is cleared rather
                    // than left pointing into the lost component.
                    *slot = None;
                    continue;
                }
                // Sticky selection: a repair's job is the smallest diff,
                // not a global rebalance — keep the installed port
                // whenever it is still on a shortest path (a port into
                // the failed link never is: the link is gone from the
                // graph), and fall back to least-loaded only when not.
                let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                let mut best: Option<(u64, PortNum)> = None;
                let mut kept: Option<PortNum> = None;
                for &(v, p) in g.neighbors(s) {
                    if row[v as usize] + 1 == d_here {
                        if installed == Some(p) {
                            kept = Some(p);
                            break;
                        }
                        let load = port_load[s * stride + p.raw() as usize];
                        let better = match best {
                            None => true,
                            Some((bl, bp)) => load < bl || (load == bl && p < bp),
                        };
                        if better {
                            best = Some((load, p));
                        }
                    }
                }
                let port = match (kept, best) {
                    (Some(p), _) | (None, Some((_, p))) => p,
                    (None, None) => return Err(IbError::Topology("distance inversion".into())),
                };
                port_load[s * stride + port.raw() as usize] += 1;
                *slot = Some(port);
            }
            out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
        }
        out.decisions = decisions;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn routes_linear_chain() {
        let mut t = linear(3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_fat_tree() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn balances_uplinks() {
        // 1 leaf pair, 2 spines: the two distinct cross-leaf destinations
        // must not pile onto a single uplink.
        let mut t = two_level(2, 4, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let leaf0 = t.switch_levels[0][0];
        let lft = &tables.lfts[&leaf0];
        // Destinations on leaf 1 (hosts 4..8 => LIDs computed by helper):
        // collect the uplink ports used and expect both uplinks present.
        let mut ports: Vec<u8> = t.hosts[4..]
            .iter()
            .map(|&h| {
                let lid = t.subnet.node(h).ports[1].lid.unwrap();
                lft.get(lid).unwrap().raw()
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert!(
            ports.len() >= 2,
            "all cross traffic on one uplink: {ports:?}"
        );
    }

    #[test]
    fn decisions_scale_with_lids_times_switches() {
        let mut t = linear(3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        // 9 LIDs (3 switches + 6 hosts) x 3 switches.
        assert_eq!(tables.decisions, 27);
    }

    #[test]
    fn empty_subnet_is_ok() {
        let s = Subnet::new();
        let tables = MinHop.compute(&s).unwrap();
        assert!(tables.lfts.is_empty());
    }

    #[test]
    fn emits_phase_spans() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let observer = Observer::metrics();
        MinHop
            .compute_with(&t.subnet, RoutingOptions::default(), &observer)
            .unwrap();
        let snap = observer.snapshot().expect("metrics enabled");
        for span in ["routing.minhop.distances", "routing.minhop.assign"] {
            assert!(
                snap.spans.iter().any(|s| s.name == span),
                "missing span {span}: {:?}",
                snap.spans
            );
        }
    }
}
