//! Min-Hop routing: OpenSM's default engine.
//!
//! All-pairs shortest switch distances (parallel BFS), then for every
//! destination LID each switch picks the least-loaded among its minimal
//! next-hop ports. Load balancing is the sequential, destination-ordered
//! port-counting scheme OpenSM uses, so the computation has an inherently
//! serial phase on top of the parallel distance matrix — one reason Min-Hop
//! costs more than structured fat-tree routing in Fig. 7.

use ib_subnet::{Lft, Subnet};
use ib_types::{IbError, IbResult, PortNum};
use rustc_hash::FxHashMap;

use crate::engine::RoutingEngine;
use crate::graph::SwitchGraph;
use crate::tables::{RoutingTables, VlAssignment};

/// The Min-Hop engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinHop;

impl RoutingEngine for MinHop {
    fn name(&self) -> &'static str {
        "minhop"
    }

    fn compute(&self, subnet: &Subnet) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }

        // Parallel all-pairs BFS: dist[s] = distances from switch s.
        let dist: Vec<Vec<u32>> = (0..g.len()).map(|s| g.bfs_distances(s)).collect();

        let mut lfts: Vec<Lft> = vec![Lft::new(); g.len()];
        // port_load[s][p] = destinations already routed out port p of s.
        let max_port = 1 + g.neighbors_max_port().unwrap_or(PortNum::MANAGEMENT).raw() as usize;
        let mut port_load: Vec<Vec<u64>> = vec![vec![0; max_port + 1]; g.len()];
        let mut decisions = 0u64;

        for dest in g.destinations() {
            for s in 0..g.len() {
                decisions += 1;
                if s == dest.switch {
                    lfts[s].set(dest.lid, dest.port);
                    continue;
                }
                let d_here = dist[s][dest.switch];
                if d_here == u32::MAX {
                    return Err(IbError::Topology(format!(
                        "switch {s} cannot reach LID {}",
                        dest.lid
                    )));
                }
                // Minimal candidates: neighbors exactly one hop closer.
                let mut best: Option<(u64, PortNum)> = None;
                for &(v, p) in g.neighbors(s) {
                    if dist[v][dest.switch] + 1 == d_here {
                        let load = port_load[s][p.raw() as usize];
                        let better = match best {
                            None => true,
                            Some((bl, bp)) => load < bl || (load == bl && p < bp),
                        };
                        if better {
                            best = Some((load, p));
                        }
                    }
                }
                let (_, port) =
                    best.ok_or_else(|| IbError::Topology("distance inversion".into()))?;
                port_load[s][port.raw() as usize] += 1;
                lfts[s].set(dest.lid, port);
            }
        }

        let lfts = lfts
            .into_iter()
            .enumerate()
            .map(|(s, lft)| (g.node_id(s), lft))
            .collect();
        Ok(RoutingTables {
            lfts,
            vls: VlAssignment::SingleVl,
            engine: self.name(),
            decisions,
        })
    }
}

impl SwitchGraph {
    /// Highest port number used by any switch-switch link (helper for load
    /// arrays).
    #[must_use]
    pub fn neighbors_max_port(&self) -> Option<PortNum> {
        (0..self.len())
            .flat_map(|s| self.neighbors(s).iter().map(|&(_, p)| p))
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn routes_linear_chain() {
        let mut t = linear(3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_fat_tree() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn balances_uplinks() {
        // 1 leaf pair, 2 spines: the two distinct cross-leaf destinations
        // must not pile onto a single uplink.
        let mut t = two_level(2, 4, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let leaf0 = t.switch_levels[0][0];
        let lft = &tables.lfts[&leaf0];
        // Destinations on leaf 1 (hosts 4..8 => LIDs computed by helper):
        // collect the uplink ports used and expect both uplinks present.
        let mut ports: Vec<u8> = t.hosts[4..]
            .iter()
            .map(|&h| {
                let lid = t.subnet.node(h).ports[1].lid.unwrap();
                lft.get(lid).unwrap().raw()
            })
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert!(
            ports.len() >= 2,
            "all cross traffic on one uplink: {ports:?}"
        );
    }

    #[test]
    fn decisions_scale_with_lids_times_switches() {
        let mut t = linear(3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        // 9 LIDs (3 switches + 6 hosts) x 3 switches.
        assert_eq!(tables.decisions, 27);
    }

    #[test]
    fn empty_subnet_is_ok() {
        let s = Subnet::new();
        let tables = MinHop.compute(&s).unwrap();
        assert!(tables.lfts.is_empty());
    }
}
