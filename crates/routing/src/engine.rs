//! The routing-engine abstraction.

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::IbResult;

use crate::graph::SwitchGraph;
use crate::tables::RoutingTables;

/// Parallelism knobs for one routing computation, mirroring `ib-sm`'s
/// `SweepOptions`: `workers` bounds how many scoped threads the engine may
/// fan its embarrassingly parallel phases across (all-pairs/per-delivery
/// BFS, per-switch LFT staging). `0` means "use the machine's available
/// parallelism". The order-sensitive serial phases (port-load balancing,
/// weight updates, VL lifting) never parallelize, so the produced
/// [`RoutingTables`] are identical for every worker count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoutingOptions {
    /// Worker-thread cap for the parallel phases; `0` = auto.
    pub workers: usize,
}

impl Default for RoutingOptions {
    /// Single-threaded: the conservative default every `compute` call uses.
    fn default() -> Self {
        Self { workers: 1 }
    }
}

impl RoutingOptions {
    /// Builder-style worker override.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Resolves the configured worker count against a job count: `0` maps
    /// to the machine's available parallelism, and the result is clamped to
    /// `1..=jobs` so callers never spawn idle threads.
    #[must_use]
    pub fn effective_workers(&self, jobs: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            self.workers
        };
        requested.min(jobs).max(1)
    }
}

/// A routing engine: a pure function from a LID-assigned subnet to a full
/// set of LFTs (plus a VL layering when the engine provides one).
///
/// Engines never mutate the subnet; the subnet manager decides when and how
/// (and at what SMP cost) tables reach the switches. The wall-clock time of
/// [`RoutingEngine::compute`] is precisely the `PCt` term of the paper's
/// equation 1 — what Fig. 7 measures and what the vSwitch reconfiguration
/// eliminates.
pub trait RoutingEngine: Send + Sync {
    /// Engine name as it appears in reports (`"fat-tree"`, `"minhop"`, ...).
    fn name(&self) -> &'static str;

    /// Computes routing tables for every switch in the subnet:
    /// single-threaded and unobserved. Provided so the trait stays
    /// object-safe and existing callers are untouched; it delegates to
    /// [`RoutingEngine::compute_with`].
    fn compute(&self, subnet: &Subnet) -> IbResult<RoutingTables> {
        self.compute_with(subnet, RoutingOptions::default(), &Observer::disabled())
    }

    /// Computes routing tables with explicit parallelism and a metrics
    /// sink. Engines emit per-phase spans (`routing.<engine>.distances`,
    /// `routing.<engine>.assign`, and VL-partition phases where they
    /// exist) into `observer`, and fan parallel phases across at most
    /// `opts` workers. Output is invariant under the worker count.
    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables>;

    /// Incrementally repairs `prior` tables after a fault: re-routes only
    /// the `dirty_dests` destination columns and splices them into a copy
    /// of `prior`, leaving every clean column byte-identical. The SM can
    /// then distribute just the dirty LFT blocks instead of a full-fabric
    /// rewrite — reconfiguration cost scales with the damage, not the
    /// fabric.
    ///
    /// Callers must treat the result as *untrusted* until it passes
    /// `FabricVerifier` — the splice preserves per-column correctness, but
    /// global properties (deadlock freedom across mixed old/new columns)
    /// need the gate.
    ///
    /// The default implementation builds the CSR [`SwitchGraph`] once and
    /// delegates to [`RoutingEngine::repair_with_graph`]; engines override
    /// that method, not this one. Callers that already hold a current
    /// graph (the SM's quiet-epoch cache) call `repair_with_graph`
    /// directly and skip the rebuild.
    fn repair_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        self.repair_with_graph(subnet, &g, opts, prior, dirty_dests, observer)
    }

    /// [`RoutingEngine::repair_with`] against a caller-supplied CSR graph.
    /// `graph` must be [`SwitchGraph::build`]'s output for `subnet` in its
    /// *current* fault state — the SM caches it across repair sweeps in a
    /// quiet topology epoch and rebuilds only when
    /// `Subnet::topology_epoch` moves.
    ///
    /// The default implementation ignores the graph and the incremental
    /// inputs and falls back to a full [`RoutingEngine::compute_with`];
    /// engines with a real incremental path override it.
    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        graph: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let _ = (graph, prior, dirty_dests);
        self.compute_with(subnet, opts, observer)
    }

    /// Whether [`RoutingEngine::repair_with`] is genuinely incremental:
    /// re-routing only the dirty columns and leaving every other column
    /// of `prior` byte-identical. Engines on the default full-recompute
    /// fallback return `false`, telling callers that track derived state
    /// per column (the SM's reverse route index) that a "repair" may
    /// have rewritten *any* column.
    fn incremental_repair(&self) -> bool {
        false
    }

    /// Repairs a *burst* of faults in one call: folds
    /// [`RoutingEngine::repair_with`] over the per-fault dirty groups in
    /// order, each repair splicing into the previous result. Groups must be
    /// disjoint and every faulted link must already be down in `subnet`
    /// before the call — then each fold step sees exactly the columns the
    /// corresponding serial repair sweep would have re-routed, and the final
    /// tables are **byte-identical** to running the k repairs one trap at a
    /// time.
    ///
    /// Deliberately *not* a single `repair_with` over the union: engines
    /// with load-balancing state (Min-Hop's least-loaded port seeding) give
    /// different — equally valid but not identical — answers when columns
    /// are re-routed together versus one fault at a time, and the batched
    /// path's contract is "same tables, fewer SMPs and verifier passes".
    /// Empty groups (faults fully subsumed by earlier repairs) are skipped,
    /// matching the serial path's clean no-op.
    fn repair_batch_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_groups: &[Vec<ib_types::Lid>],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        self.repair_batch_with_graph(subnet, &g, opts, prior, dirty_groups, observer)
    }

    /// [`RoutingEngine::repair_batch_with`] against a caller-supplied CSR
    /// graph, sharing one graph across every fold step (and with the SM's
    /// quiet-epoch cache). Same contract as `repair_batch_with`.
    fn repair_batch_with_graph(
        &self,
        subnet: &Subnet,
        graph: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_groups: &[Vec<ib_types::Lid>],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let mut cur: Option<RoutingTables> = None;
        for group in dirty_groups.iter().filter(|g| !g.is_empty()) {
            let base = cur.as_ref().unwrap_or(prior);
            cur = Some(self.repair_with_graph(subnet, graph, opts, base, group, observer)?);
        }
        Ok(cur.unwrap_or_else(|| prior.clone()))
    }
}

/// The engines of Fig. 7 (plus Up*/Down*, used in the deadlock analysis).
///
/// ```
/// use ib_routing::EngineKind;
/// use ib_routing::testutil::assign_lids;
/// use ib_subnet::topology::fattree;
///
/// let mut t = fattree::two_level(2, 2, 2);
/// assign_lids(&mut t);
/// let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
/// assert!(tables.unreachable_pairs(&t.subnet, 16).is_empty());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// OpenSM's default Min-Hop.
    MinHop,
    /// Structured fat-tree routing.
    FatTree,
    /// Up*/Down*.
    UpDown,
    /// Deadlock-free SSSP.
    Dfsssp,
    /// LASH.
    Lash,
}

impl EngineKind {
    /// All engine kinds.
    #[must_use]
    pub fn all() -> [EngineKind; 5] {
        [
            Self::FatTree,
            Self::MinHop,
            Self::UpDown,
            Self::Dfsssp,
            Self::Lash,
        ]
    }

    /// The four engines the paper's Fig. 7 compares.
    #[must_use]
    pub fn fig7() -> [EngineKind; 4] {
        [Self::FatTree, Self::MinHop, Self::Dfsssp, Self::Lash]
    }

    /// Engine name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::MinHop => "minhop",
            Self::FatTree => "fat-tree",
            Self::UpDown => "up-down",
            Self::Dfsssp => "dfsssp",
            Self::Lash => "lash",
        }
    }

    /// Instantiates the engine with default parameters.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingEngine> {
        match self {
            Self::MinHop => Box::new(crate::minhop::MinHop),
            Self::FatTree => Box::new(crate::ftree::FatTree),
            Self::UpDown => Box::new(crate::updn::UpDown::default()),
            Self::Dfsssp => Box::new(crate::dfsssp::Dfsssp::default()),
            Self::Lash => Box::new(crate::lash::Lash::default()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(EngineKind::MinHop.name(), "minhop");
        assert_eq!(EngineKind::FatTree.to_string(), "fat-tree");
        assert_eq!(EngineKind::all().len(), 5);
        assert_eq!(EngineKind::fig7().len(), 4);
    }

    #[test]
    fn build_matches_kind() {
        for kind in EngineKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn routing_options_resolve_workers() {
        assert_eq!(RoutingOptions::default().workers, 1);
        let opts = RoutingOptions::default().with_workers(4);
        assert_eq!(opts.effective_workers(100), 4);
        // Clamped to the job count, floored at one.
        assert_eq!(opts.effective_workers(2), 2);
        assert_eq!(opts.effective_workers(0), 1);
        // Auto resolves to at least one worker.
        assert!(
            RoutingOptions::default()
                .with_workers(0)
                .effective_workers(8)
                >= 1
        );
    }

    #[test]
    fn compute_delegates_to_compute_with() {
        use crate::testutil::assign_lids;
        use ib_subnet::topology::fattree;

        let mut t = fattree::two_level(2, 2, 2);
        assign_lids(&mut t);
        for kind in EngineKind::all() {
            let e = kind.build();
            let a = e.compute(&t.subnet).unwrap();
            let b = e
                .compute_with(
                    &t.subnet,
                    RoutingOptions::default(),
                    &ib_observe::Observer::disabled(),
                )
                .unwrap();
            assert_eq!(a.lfts, b.lfts, "{kind}");
            assert_eq!(a.vls, b.vls, "{kind}");
            assert_eq!(a.decisions, b.decisions, "{kind}");
        }
    }

    /// The scan `ib-verify` performs, inlined against a table set (this
    /// crate sits below `ib-verify` in the dependency order).
    fn affected(
        subnet: &Subnet,
        tables: &crate::tables::RoutingTables,
        node: ib_subnet::NodeId,
        port: ib_types::PortNum,
    ) -> Vec<ib_types::Lid> {
        let mut ends = vec![(node, port)];
        if let Some(r) = subnet
            .node(node)
            .ports
            .get(port.raw() as usize)
            .and_then(|p| p.remote)
        {
            ends.push((r.node, r.port));
        }
        subnet
            .lids()
            .into_iter()
            .filter(|&lid| {
                ends.iter().any(|&(n, p)| {
                    tables
                        .lfts
                        .get(&n)
                        .is_some_and(|lft| lft.get(lid) == Some(p))
                })
            })
            .collect()
    }

    /// `repair_batch_with` over baseline-derived dirty groups (earlier
    /// groups subtracted) must produce tables byte-identical to repairing
    /// the faults one trap at a time, each serial step re-scanning against
    /// the tables the previous repair produced. Valid because every faulted
    /// link is down before either arm starts — the theorem the SM's trap
    /// coalescing rests on.
    #[test]
    fn batch_fold_matches_serial_trap_at_a_time_repairs() {
        use crate::testutil::assign_lids;
        use ib_subnet::topology::fattree;

        for kind in EngineKind::all() {
            let mut t = fattree::two_level(4, 4, 2);
            assign_lids(&mut t);
            let engine = kind.build();
            let t0 = engine.compute(&t.subnet).unwrap();

            // Two switch-switch faults on distinct leaves, both downed
            // before any repair (connectivity survives: 4 uplinks/leaf).
            let faults: Vec<(ib_subnet::NodeId, ib_types::PortNum)> = {
                let mut seen = std::collections::HashSet::new();
                t.subnet
                    .switches()
                    .flat_map(|n| n.connected_ports().map(move |(p, ep)| (n.id, p, ep.node)))
                    .filter(|&(n, _, peer)| t.subnet.node(peer).is_switch() && seen.insert(n))
                    .map(|(n, p, _)| (n, p))
                    .take(2)
                    .collect()
            };
            assert_eq!(faults.len(), 2);
            for &(n, p) in &faults {
                t.subnet.set_link_down(n, p).unwrap();
            }

            // Serial arm: re-scan against the evolving tables.
            let opts = RoutingOptions::default();
            let obs = ib_observe::Observer::disabled();
            let mut serial = t0.clone();
            for &(n, p) in &faults {
                let dirty = affected(&t.subnet, &serial, n, p);
                if dirty.is_empty() {
                    continue;
                }
                serial = engine
                    .repair_with(&t.subnet, opts, &serial, &dirty, &obs)
                    .unwrap();
            }

            // Batch arm: groups precomputed from the T0 baseline, earlier
            // groups subtracted.
            let mut seen: std::collections::HashSet<ib_types::Lid> = Default::default();
            let groups: Vec<Vec<ib_types::Lid>> = faults
                .iter()
                .map(|&(n, p)| {
                    affected(&t.subnet, &t0, n, p)
                        .into_iter()
                        .filter(|&lid| seen.insert(lid))
                        .collect()
                })
                .collect();
            let batch = engine
                .repair_batch_with(&t.subnet, opts, &t0, &groups, &obs)
                .unwrap();

            assert_eq!(batch.lfts, serial.lfts, "{kind}");
            assert_eq!(batch.vls, serial.vls, "{kind}");
        }
    }
}
