//! The routing-engine abstraction.

use ib_subnet::Subnet;
use ib_types::IbResult;

use crate::tables::RoutingTables;

/// A routing engine: a pure function from a LID-assigned subnet to a full
/// set of LFTs (plus a VL layering when the engine provides one).
///
/// Engines never mutate the subnet; the subnet manager decides when and how
/// (and at what SMP cost) tables reach the switches. The wall-clock time of
/// [`RoutingEngine::compute`] is precisely the `PCt` term of the paper's
/// equation 1 — what Fig. 7 measures and what the vSwitch reconfiguration
/// eliminates.
pub trait RoutingEngine: Send + Sync {
    /// Engine name as it appears in reports (`"fat-tree"`, `"minhop"`, ...).
    fn name(&self) -> &'static str;

    /// Computes routing tables for every switch in the subnet.
    fn compute(&self, subnet: &Subnet) -> IbResult<RoutingTables>;
}

/// The engines of Fig. 7 (plus Up*/Down*, used in the deadlock analysis).
///
/// ```
/// use ib_routing::EngineKind;
/// use ib_routing::testutil::assign_lids;
/// use ib_subnet::topology::fattree;
///
/// let mut t = fattree::two_level(2, 2, 2);
/// assign_lids(&mut t);
/// let tables = EngineKind::MinHop.build().compute(&t.subnet).unwrap();
/// assert!(tables.unreachable_pairs(&t.subnet, 16).is_empty());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// OpenSM's default Min-Hop.
    MinHop,
    /// Structured fat-tree routing.
    FatTree,
    /// Up*/Down*.
    UpDown,
    /// Deadlock-free SSSP.
    Dfsssp,
    /// LASH.
    Lash,
}

impl EngineKind {
    /// All engine kinds.
    #[must_use]
    pub fn all() -> [EngineKind; 5] {
        [
            Self::FatTree,
            Self::MinHop,
            Self::UpDown,
            Self::Dfsssp,
            Self::Lash,
        ]
    }

    /// The four engines the paper's Fig. 7 compares.
    #[must_use]
    pub fn fig7() -> [EngineKind; 4] {
        [Self::FatTree, Self::MinHop, Self::Dfsssp, Self::Lash]
    }

    /// Engine name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::MinHop => "minhop",
            Self::FatTree => "fat-tree",
            Self::UpDown => "up-down",
            Self::Dfsssp => "dfsssp",
            Self::Lash => "lash",
        }
    }

    /// Instantiates the engine with default parameters.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingEngine> {
        match self {
            Self::MinHop => Box::new(crate::minhop::MinHop),
            Self::FatTree => Box::new(crate::ftree::FatTree),
            Self::UpDown => Box::new(crate::updn::UpDown::default()),
            Self::Dfsssp => Box::new(crate::dfsssp::Dfsssp::default()),
            Self::Lash => Box::new(crate::lash::Lash::default()),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(EngineKind::MinHop.name(), "minhop");
        assert_eq!(EngineKind::FatTree.to_string(), "fat-tree");
        assert_eq!(EngineKind::all().len(), 5);
        assert_eq!(EngineKind::fig7().len(), 4);
    }

    #[test]
    fn build_matches_kind() {
        for kind in EngineKind::all() {
            assert_eq!(kind.build().name(), kind.name());
        }
    }
}
