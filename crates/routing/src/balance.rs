//! Path-balance metrics over routing tables.
//!
//! §V-A argues prepopulated LIDs preserve the "balancing of the initial
//! routing" across live migrations (LID *swaps* permute LFT rows without
//! changing the multiset of paths), while §V-B concedes dynamic LID
//! assignment "compromises on the traffic balancing" (every VM rides its
//! hypervisor's PF path). These metrics quantify that trade-off.

use ib_subnet::Subnet;
use ib_types::IbResult;
use rustc_hash::FxHashMap;

use crate::graph::SwitchGraph;
use crate::tables::RoutingTables;

/// Per-directed-link load: how many destination LIDs route across each
/// switch-to-switch channel.
#[derive(Clone, Debug, Default)]
pub struct LinkLoad {
    /// `(switch index, out port raw)` → number of LIDs forwarded there.
    pub per_channel: FxHashMap<(u32, u8), u64>,
}

impl LinkLoad {
    /// Computes loads from explicit routing tables.
    pub fn from_tables(subnet: &Subnet, tables: &RoutingTables) -> IbResult<Self> {
        let g = SwitchGraph::build(subnet)?;
        Self::compute(subnet, &g, |s, lid| {
            tables
                .lfts
                .get(&g.node_id(s))
                .and_then(|lft| lft.get(lid))
                .map(|p| p.raw())
        })
    }

    /// Computes loads from the LFTs currently installed in the subnet —
    /// the right instrument after live migrations have edited tables in
    /// place.
    pub fn from_subnet(subnet: &Subnet) -> IbResult<Self> {
        let g = SwitchGraph::build(subnet)?;
        Self::compute(subnet, &g, |s, lid| {
            subnet
                .lft(g.node_id(s))
                .and_then(|lft| lft.get(lid))
                .map(|p| p.raw())
        })
    }

    /// Like [`LinkLoad::from_subnet`], but counting only the given
    /// destination LIDs — the right instrument for comparing architectures
    /// whose *total* LID populations differ (prepopulated mode routes
    /// every idle VF LID; dynamic mode routes none of them).
    pub fn from_subnet_for_lids(subnet: &Subnet, lids: &[ib_types::Lid]) -> IbResult<Self> {
        let wanted: rustc_hash::FxHashSet<u16> = lids.iter().map(|l| l.raw()).collect();
        let g = SwitchGraph::build(subnet)?;
        Self::compute(subnet, &g, |s, lid| {
            if !wanted.contains(&lid.raw()) {
                return None;
            }
            subnet
                .lft(g.node_id(s))
                .and_then(|lft| lft.get(lid))
                .map(|p| p.raw())
        })
    }

    fn compute(
        subnet: &Subnet,
        g: &SwitchGraph,
        port_of: impl Fn(usize, ib_types::Lid) -> Option<u8>,
    ) -> IbResult<Self> {
        let mut per_channel: FxHashMap<(u32, u8), u64> = FxHashMap::default();
        // Which ports of each physical switch lead to other *physical*
        // switches: fabric links are what balancing is about; the
        // vSwitch-internal hops inside an HCA are not shared resources in
        // the same sense.
        let switch_ports: Vec<FxHashMap<u8, ()>> = (0..g.len())
            .map(|s| {
                if !subnet.node(g.node_id(s)).is_physical_switch() {
                    return FxHashMap::default();
                }
                g.neighbors(s)
                    .iter()
                    .filter(|&&(v, _)| subnet.node(g.node_id(v as usize)).is_physical_switch())
                    .map(|&(_, p)| (p.raw(), ()))
                    .collect()
            })
            .collect();
        for dest in g.destinations() {
            for (s, ports) in switch_ports.iter().enumerate() {
                if s == dest.switch {
                    continue;
                }
                if let Some(p) = port_of(s, dest.lid) {
                    if ports.contains_key(&p) {
                        *per_channel.entry((s as u32, p)).or_insert(0) += 1;
                    }
                }
            }
        }
        Ok(Self { per_channel })
    }

    /// The heaviest channel load.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.per_channel.values().copied().max().unwrap_or(0)
    }

    /// Mean load over channels that carry anything.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.per_channel.is_empty() {
            return 0.0;
        }
        self.per_channel.values().sum::<u64>() as f64 / self.per_channel.len() as f64
    }

    /// Population standard deviation of channel loads.
    #[must_use]
    pub fn stddev(&self) -> f64 {
        if self.per_channel.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .per_channel
            .values()
            .map(|&v| {
                let d = v as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / self.per_channel.len() as f64;
        var.sqrt()
    }

    /// Sorted multiset of loads — two routings with equal multisets are
    /// equally balanced, which is exactly what a LID swap preserves.
    #[must_use]
    pub fn load_multiset(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.per_channel.values().copied().collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::minhop::MinHop;
    use crate::testutil::assign_lids;
    use crate::RoutingEngine;
    use ib_subnet::topology::fattree::two_level;

    #[test]
    fn loads_counted_on_switch_links_only() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let load = LinkLoad::from_tables(&t.subnet, &tables).unwrap();
        assert!(load.max() > 0);
        // Host-facing ports never appear as channels.
        let g = SwitchGraph::build(&t.subnet).unwrap();
        for &(s, p) in load.per_channel.keys() {
            assert!(g.neighbors(s as usize).iter().any(|&(_, q)| q.raw() == p));
        }
    }

    #[test]
    fn from_subnet_matches_from_tables_after_install() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        tables.install(&mut t.subnet).unwrap();
        let a = LinkLoad::from_tables(&t.subnet, &tables).unwrap();
        let b = LinkLoad::from_subnet(&t.subnet).unwrap();
        assert_eq!(a.load_multiset(), b.load_multiset());
    }

    #[test]
    fn stats_sane() {
        let mut t = two_level(3, 3, 2);
        assign_lids(&mut t);
        let tables = MinHop.compute(&t.subnet).unwrap();
        let load = LinkLoad::from_tables(&t.subnet, &tables).unwrap();
        assert!(load.mean() > 0.0);
        assert!(load.stddev() >= 0.0);
        assert!(load.max() as f64 >= load.mean());
    }
}
