//! The switch-level view of a subnet that routing engines compute over.

use std::collections::VecDeque;

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum};
use rustc_hash::FxHashMap;

/// A routing destination: one LID, the switch it is reached through, and the
/// port on that switch that delivers it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Destination {
    /// The destination LID.
    pub lid: Lid,
    /// The switch the LID terminates at or hangs off.
    pub switch: usize,
    /// Delivery port on that switch: `PortNum::MANAGEMENT` if the LID is the
    /// switch's own, otherwise the port cabled to the HCA.
    pub port: PortNum,
}

/// Dense adjacency view over the switches of a subnet.
///
/// Engines work in switch-index space (`0..num_switches`) for cache-friendly
/// BFS; [`SwitchGraph::node_id`] maps back to subnet handles. Both physical
/// switches and vSwitches participate: a vSwitch routes packets between its
/// VFs and its uplink like any other switch.
#[derive(Clone, Debug)]
pub struct SwitchGraph {
    switches: Vec<NodeId>,
    index_of: FxHashMap<NodeId, usize>,
    /// `adj[s]` = (neighbor switch index, output port on `s`).
    adj: Vec<Vec<(usize, PortNum)>>,
    destinations: Vec<Destination>,
}

impl SwitchGraph {
    /// Extracts the switch graph and the destination list from a subnet.
    ///
    /// Fails if an HCA carries a LID but is not cabled to a switch.
    pub fn build(subnet: &Subnet) -> IbResult<Self> {
        let switches: Vec<NodeId> = subnet.switches().map(|n| n.id).collect();
        let index_of: FxHashMap<NodeId, usize> = switches
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();

        let mut adj = vec![Vec::new(); switches.len()];
        for (i, &sw) in switches.iter().enumerate() {
            for (port, remote) in subnet.node(sw).connected_ports() {
                if let Some(&j) = index_of.get(&remote.node) {
                    adj[i].push((j, port));
                }
            }
        }

        let mut destinations = Vec::with_capacity(subnet.num_lids());
        for lid in subnet.lids() {
            let ep = subnet.endpoint_of(lid).expect("registered LID");
            if let Some(&s) = index_of.get(&ep.node) {
                // The LID belongs to a switch itself.
                destinations.push(Destination {
                    lid,
                    switch: s,
                    port: PortNum::MANAGEMENT,
                });
            } else {
                // The LID belongs to an HCA port; find the switch it hangs
                // off (the far end of its cable).
                let hca = subnet.node(ep.node);
                // A down uplink counts as uncabled: the routing engine must
                // not compute paths that end on a dead link.
                let remote = hca
                    .ports
                    .get(ep.port.raw() as usize)
                    .and_then(|p| if p.down { None } else { p.remote })
                    .ok_or_else(|| {
                        IbError::Topology(format!(
                            "{} carries LID {lid} but is not cabled",
                            hca.name
                        ))
                    })?;
                let &s = index_of.get(&remote.node).ok_or_else(|| {
                    IbError::Topology(format!(
                        "{} (LID {lid}) is cabled to a non-switch",
                        hca.name
                    ))
                })?;
                destinations.push(Destination {
                    lid,
                    switch: s,
                    port: remote.port,
                });
            }
        }

        Ok(Self {
            switches,
            index_of,
            adj,
            destinations,
        })
    }

    /// Number of switches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether there are no switches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Subnet handle of switch index `s`.
    #[must_use]
    pub fn node_id(&self, s: usize) -> NodeId {
        self.switches[s]
    }

    /// Switch index of a subnet node, if it is a switch.
    #[must_use]
    pub fn index(&self, id: NodeId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// Adjacency of switch `s`.
    #[must_use]
    pub fn neighbors(&self, s: usize) -> &[(usize, PortNum)] {
        &self.adj[s]
    }

    /// All destinations (every registered LID).
    #[must_use]
    pub fn destinations(&self) -> &[Destination] {
        &self.destinations
    }

    /// BFS hop distances from switch `from` to every switch
    /// (`u32::MAX` = unreachable).
    #[must_use]
    pub fn bfs_distances(&self, from: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.adj[u] {
                if dist[v] == u32::MAX {
                    dist[v] = dist[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        dist
    }

    /// Rank of each switch as hop distance to the nearest endpoint-bearing
    /// (leaf) switch: leaves are rank 0, their neighbors rank 1, and so on.
    /// This is the rank structure fat-tree routing keys off.
    #[must_use]
    pub fn ranks(&self) -> Vec<u32> {
        let mut rank = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        for d in &self.destinations {
            if d.port != PortNum::MANAGEMENT && rank[d.switch] != 0 {
                rank[d.switch] = 0;
                queue.push_back(d.switch);
            }
        }
        // No endpoints at all: treat switch 0 as the single leaf.
        if queue.is_empty() && !self.is_empty() {
            rank[0] = 0;
            queue.push_back(0);
        }
        while let Some(u) = queue.pop_front() {
            for &(v, _) in &self.adj[u] {
                if rank[v] == u32::MAX {
                    rank[v] = rank[u] + 1;
                    queue.push_back(v);
                }
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;

    fn lid(raw: u16) -> Lid {
        Lid::from_raw(raw)
    }

    fn managed_linear() -> (ib_subnet::topology::BuiltTopology, SwitchGraph) {
        let mut t = linear(3, 1);
        // Switch LIDs 1..=3, host LIDs 4..=6.
        for (i, &sw) in t.switch_levels[0].clone().iter().enumerate() {
            t.subnet.assign_switch_lid(sw, lid(i as u16 + 1)).unwrap();
        }
        for (i, &h) in t.hosts.clone().iter().enumerate() {
            t.subnet
                .assign_port_lid(h, PortNum::new(1), lid(i as u16 + 4))
                .unwrap();
        }
        let g = SwitchGraph::build(&t.subnet).unwrap();
        (t, g)
    }

    #[test]
    fn graph_shape() {
        let (t, g) = managed_linear();
        assert_eq!(g.len(), 3);
        assert_eq!(g.destinations().len(), 6);
        assert_eq!(g.neighbors(1).len(), 2);
        assert_eq!(g.index(t.switch_levels[0][2]), Some(2));
    }

    #[test]
    fn destination_ports_resolved() {
        let (_, g) = managed_linear();
        // Switch LIDs terminate at port 0; host LIDs at the cable port.
        let d1 = g.destinations().iter().find(|d| d.lid == lid(1)).unwrap();
        assert_eq!(d1.port, PortNum::MANAGEMENT);
        let d4 = g.destinations().iter().find(|d| d.lid == lid(4)).unwrap();
        assert_eq!(d4.switch, 0);
        assert_eq!(d4.port, PortNum::new(3));
    }

    #[test]
    fn bfs_distances_linear() {
        let (_, g) = managed_linear();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0]);
    }

    #[test]
    fn ranks_on_fat_tree() {
        let mut t = two_level(4, 2, 2);
        for (i, &h) in t.hosts.clone().iter().enumerate() {
            t.subnet
                .assign_port_lid(h, PortNum::new(1), lid(i as u16 + 1))
                .unwrap();
        }
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let ranks = g.ranks();
        for &leaf in &t.switch_levels[0] {
            assert_eq!(ranks[g.index(leaf).unwrap()], 0);
        }
        for &spine in &t.switch_levels[1] {
            assert_eq!(ranks[g.index(spine).unwrap()], 1);
        }
    }

    #[test]
    fn uncabled_lid_bearing_hca_rejected() {
        let mut s = Subnet::new();
        let _sw = s.add_switch("sw", 2);
        let h = s.add_hca("h");
        s.assign_port_lid(h, PortNum::new(1), lid(1)).unwrap();
        assert!(SwitchGraph::build(&s).is_err());
    }
}
