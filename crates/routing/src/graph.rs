//! The switch-level view of a subnet that routing engines compute over,
//! plus the flat-array compute substrate every engine's hot path runs on:
//! a CSR adjacency, a reusable zero-allocation BFS workspace
//! ([`BfsScratch`]), a row-major [`DistanceMatrix`], and a deterministic
//! scoped-thread fan-out ([`parallel_for_each`]).

use std::collections::VecDeque;

use ib_subnet::{NodeId, Subnet};
use ib_types::{IbError, IbResult, Lid, PortNum};
use rustc_hash::FxHashMap;

/// A routing destination: one LID, the switch it is reached through, and the
/// port on that switch that delivers it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Destination {
    /// The destination LID.
    pub lid: Lid,
    /// The switch the LID terminates at or hangs off.
    pub switch: usize,
    /// Delivery port on that switch: `PortNum::MANAGEMENT` if the LID is the
    /// switch's own, otherwise the port cabled to the HCA.
    pub port: PortNum,
}

/// Dense adjacency view over the switches of a subnet, in CSR form.
///
/// Engines work in switch-index space (`0..num_switches`) for cache-friendly
/// BFS; [`SwitchGraph::node_id`] maps back to subnet handles. Both physical
/// switches and vSwitches participate: a vSwitch routes packets between its
/// VFs and its uplink like any other switch.
///
/// The adjacency is one flat edge array plus per-switch offsets — the whole
/// graph is two contiguous allocations, so an all-pairs BFS streams the edge
/// array instead of chasing one heap `Vec` per switch.
#[derive(Clone, Debug)]
pub struct SwitchGraph {
    switches: Vec<NodeId>,
    index_of: FxHashMap<NodeId, usize>,
    /// CSR edge array: `edges[offsets[s]..offsets[s + 1]]` holds the
    /// (neighbor switch index, output port on `s`) pairs of switch `s`.
    edges: Vec<(u32, PortNum)>,
    offsets: Vec<u32>,
    destinations: Vec<Destination>,
}

impl SwitchGraph {
    /// Extracts the switch graph and the destination list from a subnet.
    ///
    /// Fails if an HCA carries a LID but is not cabled to a switch, or if a
    /// registered LID has no endpoint behind it.
    pub fn build(subnet: &Subnet) -> IbResult<Self> {
        let switches: Vec<NodeId> = subnet.switches().map(|n| n.id).collect();
        let index_of: FxHashMap<NodeId, usize> = switches
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, i))
            .collect();

        // Two passes build the CSR arrays without intermediate per-switch
        // vectors: count degrees, prefix-sum into offsets, then fill.
        let mut offsets = vec![0u32; switches.len() + 1];
        for (i, &sw) in switches.iter().enumerate() {
            let degree = subnet
                .node(sw)
                .connected_ports()
                .filter(|(_, remote)| index_of.contains_key(&remote.node))
                .count();
            offsets[i + 1] = offsets[i] + degree as u32;
        }
        let mut edges = vec![(0u32, PortNum::MANAGEMENT); offsets[switches.len()] as usize];
        for (i, &sw) in switches.iter().enumerate() {
            let mut at = offsets[i] as usize;
            for (port, remote) in subnet.node(sw).connected_ports() {
                if let Some(&j) = index_of.get(&remote.node) {
                    edges[at] = (j as u32, port);
                    at += 1;
                }
            }
        }

        let mut destinations = Vec::with_capacity(subnet.num_lids());
        for lid in subnet.lids() {
            destinations.push(resolve_destination(subnet, &index_of, lid)?);
        }

        Ok(Self {
            switches,
            index_of,
            edges,
            offsets,
            destinations,
        })
    }

    /// Number of switches.
    #[must_use]
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// Whether there are no switches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// Subnet handle of switch index `s`.
    #[must_use]
    pub fn node_id(&self, s: usize) -> NodeId {
        self.switches[s]
    }

    /// Switch index of a subnet node, if it is a switch.
    #[must_use]
    pub fn index(&self, id: NodeId) -> Option<usize> {
        self.index_of.get(&id).copied()
    }

    /// Adjacency of switch `s`: (neighbor switch index, output port) pairs.
    #[must_use]
    pub fn neighbors(&self, s: usize) -> &[(u32, PortNum)] {
        &self.edges[self.offsets[s] as usize..self.offsets[s + 1] as usize]
    }

    /// Highest port number used by any switch-switch link (sizes the flat
    /// per-port load and weight arrays engines keep).
    #[must_use]
    pub fn neighbors_max_port(&self) -> Option<PortNum> {
        self.edges.iter().map(|&(_, p)| p).max()
    }

    /// One past the highest destination LID (`0` when there are none):
    /// the row length of the flat per-switch LFT staging engines fill.
    #[must_use]
    pub fn lid_bound(&self) -> usize {
        self.destinations
            .iter()
            .map(|d| d.lid.raw() as usize + 1)
            .max()
            .unwrap_or(0)
    }

    /// All destinations (every registered LID).
    #[must_use]
    pub fn destinations(&self) -> &[Destination] {
        &self.destinations
    }

    /// BFS hop distances from switch `from` to every switch
    /// (`u32::MAX` = unreachable). Allocates; hot paths use [`BfsScratch`]
    /// or [`DistanceMatrix`] instead.
    #[must_use]
    pub fn bfs_distances(&self, from: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.len()];
        BfsScratch::for_graph(self).fill_into(self, from, &mut dist);
        dist
    }

    /// Connected-component labeling of the switch graph: deterministic
    /// (components are numbered by their lowest switch index, in index
    /// order), computed with one BFS pass over the CSR arrays. Engines use
    /// this to route per component on a split fabric; the SM uses it to
    /// detect the split and count the unreachable side.
    #[must_use]
    pub fn components(&self) -> Components {
        let mut label = vec![u32::MAX; self.len()];
        let mut queue: Vec<u32> = Vec::with_capacity(self.len());
        let mut count = 0u32;
        for root in 0..self.len() {
            if label[root] != u32::MAX {
                continue;
            }
            label[root] = count;
            queue.clear();
            queue.push(root as u32);
            let mut head = 0;
            while head < queue.len() {
                let u = queue[head] as usize;
                head += 1;
                for &(v, _) in self.neighbors(u) {
                    if label[v as usize] == u32::MAX {
                        label[v as usize] = count;
                        queue.push(v);
                    }
                }
            }
            count += 1;
        }
        Components {
            label,
            count: count as usize,
        }
    }

    /// The bridge (cut) edges of the switch graph: unordered switch-index
    /// pairs `(a, b)` with `a < b`, sorted, whose removal would disconnect
    /// the component containing them. Parallel cables between the same two
    /// switches are never bridges — cutting one leaves the twin. Computed
    /// with an iterative Tarjan low-link pass, so deep fabrics cannot
    /// overflow the call stack.
    #[must_use]
    pub fn bridges(&self) -> Vec<(usize, usize)> {
        let n = self.len();
        // Collapse parallel cables: unique neighbor + multiplicity.
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (u, row) in adj.iter_mut().enumerate() {
            let mut nbrs: Vec<u32> = self.neighbors(u).iter().map(|&(v, _)| v).collect();
            nbrs.sort_unstable();
            let mut i = 0;
            while i < nbrs.len() {
                let v = nbrs[i];
                let mut m = 0u32;
                while i < nbrs.len() && nbrs[i] == v {
                    m += 1;
                    i += 1;
                }
                row.push((v, m));
            }
        }
        let mut disc = vec![u32::MAX; n];
        let mut low = vec![u32::MAX; n];
        let mut timer = 0u32;
        let mut out = Vec::new();
        // One explicit DFS frame per switch: (node, parent, next edge).
        let mut stack: Vec<(u32, u32, usize)> = Vec::new();
        for root in 0..n {
            if disc[root] != u32::MAX {
                continue;
            }
            disc[root] = timer;
            low[root] = timer;
            timer += 1;
            stack.push((root as u32, u32::MAX, 0));
            while let Some(frame) = stack.last_mut() {
                let (u, parent) = (frame.0 as usize, frame.1);
                if frame.2 < adj[u].len() {
                    let (v, mult) = adj[u][frame.2];
                    frame.2 += 1;
                    let v = v as usize;
                    if disc[v] == u32::MAX {
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        stack.push((v as u32, u as u32, 0));
                    } else if v as u32 != parent || mult > 1 {
                        // Back edge — or a parallel cable to the parent,
                        // which counts as one (the tree edge used one of
                        // the cables; its twin is a genuine cycle).
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&(p, _, _)) = stack.last() {
                        let p = p as usize;
                        low[p] = low[p].min(low[u]);
                        if low[u] > disc[p] {
                            out.push((p.min(u), p.max(u)));
                        }
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Rank of each switch as hop distance to the nearest endpoint-bearing
    /// (leaf) switch: leaves are rank 0, their neighbors rank 1, and so on.
    /// This is the rank structure fat-tree routing keys off.
    #[must_use]
    pub fn ranks(&self) -> Vec<u32> {
        let mut rank = vec![u32::MAX; self.len()];
        let mut queue = VecDeque::new();
        for d in &self.destinations {
            if d.port != PortNum::MANAGEMENT && rank[d.switch] != 0 {
                rank[d.switch] = 0;
                queue.push_back(d.switch);
            }
        }
        // No endpoints at all: treat switch 0 as the single leaf.
        if queue.is_empty() && !self.is_empty() {
            rank[0] = 0;
            queue.push_back(0);
        }
        while let Some(u) = queue.pop_front() {
            for &(v, _) in self.neighbors(u) {
                if rank[v as usize] == u32::MAX {
                    rank[v as usize] = rank[u] + 1;
                    queue.push_back(v as usize);
                }
            }
        }
        rank
    }
}

/// Connected-component labels over a [`SwitchGraph`], as produced by
/// [`SwitchGraph::components`]. Labels are dense (`0..count`) and
/// deterministic: component `k` is the one whose lowest switch index is the
/// `k`-th lowest among component representatives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    label: Vec<u32>,
    count: usize,
}

impl Components {
    /// Number of connected components (`1` on a healthy fabric).
    #[must_use]
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether the graph is split into more than one component.
    #[must_use]
    pub fn is_partitioned(&self) -> bool {
        self.count > 1
    }

    /// Component label of switch index `s`.
    #[must_use]
    pub fn label_of(&self, s: usize) -> u32 {
        self.label[s]
    }

    /// Whether switches `a` and `b` share a component.
    #[must_use]
    pub fn same(&self, a: usize, b: usize) -> bool {
        self.label[a] == self.label[b]
    }

    /// The full label array, indexed by switch index.
    #[must_use]
    pub fn labels(&self) -> &[u32] {
        &self.label
    }
}

/// Resolves one LID to its delivery switch and port.
fn resolve_destination(
    subnet: &Subnet,
    index_of: &FxHashMap<NodeId, usize>,
    lid: Lid,
) -> IbResult<Destination> {
    let ep = subnet
        .endpoint_of(lid)
        .ok_or_else(|| IbError::Topology(format!("LID {lid} is registered but has no endpoint")))?;
    if let Some(&s) = index_of.get(&ep.node) {
        // The LID belongs to a switch itself.
        return Ok(Destination {
            lid,
            switch: s,
            port: PortNum::MANAGEMENT,
        });
    }
    // The LID belongs to an HCA port; find the switch it hangs off (the
    // far end of its cable).
    let hca = subnet.node(ep.node);
    // A down uplink counts as uncabled: the routing engine must not
    // compute paths that end on a dead link.
    let remote = hca
        .ports
        .get(ep.port.raw() as usize)
        .and_then(|p| if p.down { None } else { p.remote })
        .ok_or_else(|| {
            IbError::Topology(format!("{} carries LID {lid} but is not cabled", hca.name))
        })?;
    let &s = index_of.get(&remote.node).ok_or_else(|| {
        IbError::Topology(format!(
            "{} (LID {lid}) is cabled to a non-switch",
            hca.name
        ))
    })?;
    Ok(Destination {
        lid,
        switch: s,
        port: remote.port,
    })
}

/// Reusable BFS workspace: a distance buffer plus a flat FIFO queue (each
/// switch enters once, so a `Vec` with a head cursor is the ring). One
/// scratch serves every source a worker sweeps — per-source BFS allocates
/// nothing.
#[derive(Clone, Debug)]
pub struct BfsScratch {
    dist: Vec<u32>,
    queue: Vec<u32>,
}

impl BfsScratch {
    /// A scratch sized for `g`.
    #[must_use]
    pub fn for_graph(g: &SwitchGraph) -> Self {
        Self {
            dist: vec![u32::MAX; g.len()],
            queue: Vec::with_capacity(g.len()),
        }
    }

    /// Hop distances from `from`, valid until the next call.
    pub fn distances(&mut self, g: &SwitchGraph, from: usize) -> &[u32] {
        let mut dist = std::mem::take(&mut self.dist);
        self.fill_into(g, from, &mut dist);
        self.dist = dist;
        &self.dist
    }

    /// Computes hop distances from `from` directly into `dist`
    /// (`u32::MAX` = unreachable), using only the scratch queue.
    pub fn fill_into(&mut self, g: &SwitchGraph, from: usize, dist: &mut [u32]) {
        dist.fill(u32::MAX);
        self.queue.clear();
        dist[from] = 0;
        self.queue.push(from as u32);
        let mut head = 0;
        while head < self.queue.len() {
            let u = self.queue[head] as usize;
            head += 1;
            let du = dist[u];
            for &(v, _) in g.neighbors(u) {
                if dist[v as usize] == u32::MAX {
                    dist[v as usize] = du + 1;
                    self.queue.push(v);
                }
            }
        }
    }
}

/// A flat row-major distance matrix: row `i` holds the hop distances from
/// the `i`-th requested source to every switch. One contiguous allocation
/// replaces the `Vec<Vec<u32>>` the engines used to build per sweep.
#[derive(Clone, Debug)]
pub struct DistanceMatrix {
    cols: usize,
    data: Vec<u32>,
}

impl DistanceMatrix {
    /// All-pairs distances: row `s` = distances from switch `s`, fanned
    /// across up to `workers` scoped threads. Row contents depend only on
    /// the source, so the matrix is identical for every worker count.
    #[must_use]
    pub fn all_pairs(g: &SwitchGraph, workers: usize) -> Self {
        let sources: Vec<usize> = (0..g.len()).collect();
        Self::for_sources(g, &sources, workers)
    }

    /// Distances from an arbitrary source list: row `i` = distances from
    /// `sources[i]` (the per-delivery-switch form fat-tree and Up*/Down*
    /// sweeps use).
    #[must_use]
    pub fn for_sources(g: &SwitchGraph, sources: &[usize], workers: usize) -> Self {
        let cols = g.len();
        let mut data = vec![u32::MAX; sources.len() * cols];
        let mut rows: Vec<&mut [u32]> = data.chunks_mut(cols.max(1)).collect();
        parallel_for_each(
            &mut rows,
            workers,
            || BfsScratch::for_graph(g),
            |scratch, i, row| scratch.fill_into(g, sources[i], row),
        );
        Self { cols, data }
    }

    /// Number of rows (sources).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.cols).unwrap_or(0)
    }

    /// Row `i`: distances from the `i`-th source to every switch.
    #[must_use]
    pub fn row(&self, i: usize) -> &[u32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// Runs `f(state, index, item)` over every item, fanned across up to
/// `workers` scoped threads in contiguous chunks; `init` builds one
/// per-worker scratch state. `workers == 0` resolves to the machine's
/// available parallelism. Deterministic by construction: `f` sees only its
/// own item and index, never the partition, so outputs are identical for
/// every worker count.
pub(crate) fn parallel_for_each<T, S, I, F>(items: &mut [T], workers: usize, init: I, f: F)
where
    T: Send,
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut T) + Sync,
{
    let jobs = items.len();
    if jobs == 0 {
        return;
    }
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        workers
    }
    .min(jobs)
    .max(1);
    if workers <= 1 {
        let mut state = init();
        for (i, item) in items.iter_mut().enumerate() {
            f(&mut state, i, item);
        }
        return;
    }
    let chunk = jobs.div_ceil(workers);
    std::thread::scope(|scope| {
        for (ci, block) in items.chunks_mut(chunk).enumerate() {
            let (init, f) = (&init, &f);
            scope.spawn(move || {
                let mut state = init();
                for (j, item) in block.iter_mut().enumerate() {
                    f(&mut state, ci * chunk + j, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ib_subnet::topology::basic::linear;
    use ib_subnet::topology::fattree::two_level;

    fn lid(raw: u16) -> Lid {
        Lid::from_raw(raw)
    }

    fn managed_linear() -> (ib_subnet::topology::BuiltTopology, SwitchGraph) {
        let mut t = linear(3, 1);
        // Switch LIDs 1..=3, host LIDs 4..=6.
        for (i, &sw) in t.switch_levels[0].clone().iter().enumerate() {
            t.subnet.assign_switch_lid(sw, lid(i as u16 + 1)).unwrap();
        }
        for (i, &h) in t.hosts.clone().iter().enumerate() {
            t.subnet
                .assign_port_lid(h, PortNum::new(1), lid(i as u16 + 4))
                .unwrap();
        }
        let g = SwitchGraph::build(&t.subnet).unwrap();
        (t, g)
    }

    #[test]
    fn graph_shape() {
        let (t, g) = managed_linear();
        assert_eq!(g.len(), 3);
        assert_eq!(g.destinations().len(), 6);
        assert_eq!(g.neighbors(1).len(), 2);
        assert_eq!(g.index(t.switch_levels[0][2]), Some(2));
        assert_eq!(g.lid_bound(), 7);
    }

    #[test]
    fn destination_ports_resolved() {
        let (_, g) = managed_linear();
        // Switch LIDs terminate at port 0; host LIDs at the cable port.
        let d1 = g.destinations().iter().find(|d| d.lid == lid(1)).unwrap();
        assert_eq!(d1.port, PortNum::MANAGEMENT);
        let d4 = g.destinations().iter().find(|d| d.lid == lid(4)).unwrap();
        assert_eq!(d4.switch, 0);
        assert_eq!(d4.port, PortNum::new(3));
    }

    #[test]
    fn bfs_distances_linear() {
        let (_, g) = managed_linear();
        assert_eq!(g.bfs_distances(0), vec![0, 1, 2]);
        assert_eq!(g.bfs_distances(2), vec![2, 1, 0]);
    }

    #[test]
    fn scratch_reuse_matches_fresh_bfs() {
        let mut t = two_level(4, 3, 2);
        crate::testutil::assign_lids(&mut t);
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let mut scratch = BfsScratch::for_graph(&g);
        for s in 0..g.len() {
            assert_eq!(scratch.distances(&g, s), g.bfs_distances(s).as_slice());
        }
    }

    #[test]
    fn distance_matrix_rows_match_bfs_for_any_worker_count() {
        let mut t = two_level(4, 3, 2);
        crate::testutil::assign_lids(&mut t);
        let g = SwitchGraph::build(&t.subnet).unwrap();
        for workers in [1, 2, 0] {
            let m = DistanceMatrix::all_pairs(&g, workers);
            assert_eq!(m.rows(), g.len());
            for s in 0..g.len() {
                assert_eq!(m.row(s), g.bfs_distances(s).as_slice(), "row {s}");
            }
        }
        // Subset form: one row per requested source, in request order.
        let m = DistanceMatrix::for_sources(&g, &[3, 1], 2);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.row(0), g.bfs_distances(3).as_slice());
        assert_eq!(m.row(1), g.bfs_distances(1).as_slice());
    }

    #[test]
    fn ranks_on_fat_tree() {
        let mut t = two_level(4, 2, 2);
        for (i, &h) in t.hosts.clone().iter().enumerate() {
            t.subnet
                .assign_port_lid(h, PortNum::new(1), lid(i as u16 + 1))
                .unwrap();
        }
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let ranks = g.ranks();
        for &leaf in &t.switch_levels[0] {
            assert_eq!(ranks[g.index(leaf).unwrap()], 0);
        }
        for &spine in &t.switch_levels[1] {
            assert_eq!(ranks[g.index(spine).unwrap()], 1);
        }
    }

    #[test]
    fn uncabled_lid_bearing_hca_rejected() {
        let mut s = Subnet::new();
        let _sw = s.add_switch("sw", 2);
        let h = s.add_hca("h");
        s.assign_port_lid(h, PortNum::new(1), lid(1)).unwrap();
        assert!(SwitchGraph::build(&s).is_err());
    }

    #[test]
    fn unregistered_lid_resolves_to_error_not_panic() {
        // The LID-to-endpoint lookup is an `IbError`, not an `expect`:
        // a registered-but-endpointless LID must degrade the result.
        let s = Subnet::new();
        let err = resolve_destination(&s, &FxHashMap::default(), lid(7)).unwrap_err();
        assert!(
            err.to_string().contains("no endpoint"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn components_on_connected_and_split_graphs() {
        let (mut t, g) = managed_linear();
        let c = g.components();
        assert_eq!(c.count(), 1);
        assert!(!c.is_partitioned());
        assert!(c.same(0, 2));

        // Cut the middle link: two components, labeled in index order.
        let s0 = t.switch_levels[0][0];
        let s1 = t.switch_levels[0][1];
        let (port, _) = t
            .subnet
            .node(s0)
            .connected_ports()
            .find(|(_, r)| r.node == s1)
            .unwrap();
        t.subnet.set_link_down(s0, port).unwrap();
        let g = SwitchGraph::build(&t.subnet).unwrap();
        let c = g.components();
        assert_eq!(c.count(), 2);
        assert!(c.is_partitioned());
        assert_eq!(c.label_of(0), 0);
        assert_eq!(c.label_of(1), 1);
        assert_eq!(c.label_of(2), 1);
        assert!(!c.same(0, 1));
        assert!(c.same(1, 2));
    }

    #[test]
    fn bridges_on_a_linear_chain() {
        // Every link of a chain is a bridge.
        let (_, g) = managed_linear();
        assert_eq!(g.bridges(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn fat_tree_with_redundant_spines_has_no_bridges() {
        let mut t = two_level(3, 2, 2);
        crate::testutil::assign_lids(&mut t);
        let g = SwitchGraph::build(&t.subnet).unwrap();
        assert!(g.bridges().is_empty());
    }

    #[test]
    fn losing_spine_redundancy_creates_bridges() {
        // Cut every leaf->spine1 uplink: the remaining leaf->spine0 links
        // are each the only path out of their leaf.
        let mut t = two_level(3, 2, 2);
        crate::testutil::assign_lids(&mut t);
        let spine1 = t.switch_levels[1][1];
        for &leaf in &t.switch_levels[0] {
            let (port, _) = t
                .subnet
                .node(leaf)
                .connected_ports()
                .find(|(_, r)| r.node == spine1)
                .unwrap();
            t.subnet.set_link_down(leaf, port).unwrap();
        }
        let g = SwitchGraph::build(&t.subnet).unwrap();
        assert_eq!(g.bridges().len(), 3, "each surviving uplink is a bridge");
        assert_eq!(g.components().count(), 2, "spine1 is its own component");
    }

    #[test]
    fn parallel_cables_are_never_bridges() {
        let mut s = Subnet::new();
        let a = s.add_switch("a", 4);
        let b = s.add_switch("b", 4);
        s.connect(a, PortNum::new(1), b, PortNum::new(1)).unwrap();
        s.connect(a, PortNum::new(2), b, PortNum::new(2)).unwrap();
        let g = SwitchGraph::build(&s).unwrap();
        assert!(g.bridges().is_empty());
        // Cut one of the twins: the survivor becomes a bridge.
        s.set_link_down(a, PortNum::new(1)).unwrap();
        let g = SwitchGraph::build(&s).unwrap();
        assert_eq!(g.bridges(), vec![(0, 1)]);
    }

    #[test]
    fn parallel_for_each_is_partition_independent() {
        let n = 23;
        let mut reference: Vec<u64> = vec![0; n];
        parallel_for_each(&mut reference, 1, || (), |(), i, out| *out = (i * i) as u64);
        for workers in [2, 4, 0] {
            let mut items: Vec<u64> = vec![0; n];
            parallel_for_each(
                &mut items,
                workers,
                || (),
                |(), i, out| {
                    *out = (i * i) as u64;
                },
            );
            assert_eq!(items, reference, "workers={workers}");
        }
    }
}
