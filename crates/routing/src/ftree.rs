//! Structured fat-tree routing.
//!
//! Exploits the layered structure of a fat tree: one BFS per *leaf switch*
//! (instead of per switch, as Min-Hop needs) and deterministic d-mod-k
//! spreading of destinations across uplinks (instead of sequential load
//! accounting). That structural shortcut is why OpenSM's `ftree` is the
//! fastest engine in the paper's Fig. 7 — a property this implementation
//! reproduces by construction. Both phases — the per-delivery-switch BFS
//! sweep and the per-switch LFT fill — are independent per unit of work
//! and fan across the configured workers.
//!
//! Like OpenSM's engine, it refuses topologies that are not layered
//! fat trees (edges must connect adjacent ranks, endpoints must live on
//! leaves); callers fall back to Min-Hop in that case.
//!
//! Switch-destined LIDs are routed up*/down*-legally on a dedicated
//! lane (see [`crate::swcols`]) — d-mod-k valleys between sibling
//! spines would otherwise close credit loops, the caveat OpenSM's own
//! ftree documents for switch-to-switch paths.

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::{IbError, IbResult, PortNum};
use rustc_hash::{FxHashMap, FxHashSet};

use crate::engine::{RoutingEngine, RoutingOptions};
use crate::graph::{parallel_for_each, Destination, DistanceMatrix, SwitchGraph};
use crate::swcols::{switch_dest_vls, SwitchColumns};
use crate::tables::{stages_to_lfts, RoutingTables, VlAssignment};

/// The fat-tree engine.
#[derive(Clone, Copy, Debug, Default)]
pub struct FatTree;

impl RoutingEngine for FatTree {
    fn name(&self) -> &'static str {
        "fat-tree"
    }

    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }
        let ranks = g.ranks();
        validate_fat_tree(&g, &ranks)?;

        // Delivery switches of HCA-destined LIDs, deduplicated and
        // ordered (switch-destined columns use the legal sweep below and
        // need no distance row here).
        let mut delivery: Vec<usize> = g
            .destinations()
            .iter()
            .filter(|d| d.port != PortNum::MANAGEMENT)
            .map(|d| d.switch)
            .collect();
        delivery.sort_unstable();
        delivery.dedup();
        let dist_index: FxHashMap<usize, usize> =
            delivery.iter().enumerate().map(|(i, &s)| (s, i)).collect();

        // Phase 1: one BFS per *delivery* switch (typically only the
        // leaves), fanned across workers — far fewer sweeps than Min-Hop's
        // all-switches matrix, which is the structural shortcut that makes
        // fat-tree routing the cheapest engine in Fig. 7.
        let workers = opts.effective_workers(g.len());
        let dist = {
            let _span = observer.span("routing.fat-tree.distances");
            DistanceMatrix::for_sources(&g, &delivery, workers)
        };

        // Switch-destined columns are valley-routed via the hub on
        // their own lane instead of d-mod-k: a spine-to-spine route
        // must dip through a leaf, and two such valleys through
        // different leaves close a credit loop (see `swcols`).
        let swcols = SwitchColumns::new(&g, workers);

        // Per-switch neighbor lists sorted by port, so d-mod-k picks are
        // deterministic without per-destination allocation.
        let sorted_adj: Vec<Vec<(u32, PortNum)>> = (0..g.len())
            .map(|s| {
                let mut v = g.neighbors(s).to_vec();
                v.sort_unstable_by_key(|&(_, p)| p);
                v
            })
            .collect();

        // Phase 2: every switch fills its own staging row independently —
        // no sequential load-balancing state, so this parallelizes
        // perfectly (each worker writes only its own rows).
        let _span = observer.span("routing.fat-tree.assign");
        let mut stages: Vec<Vec<Option<PortNum>>> = vec![vec![None; g.lid_bound()]; g.len()];
        parallel_for_each(
            &mut stages,
            workers,
            || (),
            |(), s, stage| {
                for dest in g.destinations() {
                    if s == dest.switch {
                        stage[dest.lid.raw() as usize] = Some(dest.port);
                        continue;
                    }
                    if dest.port == PortNum::MANAGEMENT {
                        // Switch LID: legal pick (None across a split).
                        stage[dest.lid.raw() as usize] = swcols.pick(dest.switch, dest.lid, s);
                        continue;
                    }
                    let drow = dist.row(dist_index[&dest.switch]);
                    if drow[s] == u32::MAX {
                        // Split fabric: the destination lives in another
                        // component. The stage entry stays `None`.
                        continue;
                    }
                    // Two passes over the (small) neighbor list: count the
                    // minimal candidates, then take the (lid + switch mod
                    // count)-th. The switch stagger keeps the spread but
                    // breaks the fabric-wide symmetry of pure d-mod-k:
                    // without it, uniformly-cabled switches all point the
                    // same destination at the same spine, so one lost
                    // cable breaks that column at every switch at once
                    // and an incremental repair can never beat a full
                    // sweep's block diff.
                    let minimal =
                        |&&(v, _): &&(u32, PortNum)| drow[v as usize].wrapping_add(1) == drow[s];
                    let count = sorted_adj[s].iter().filter(minimal).count();
                    if count == 0 {
                        // Caught by layering validation for real fat
                        // trees; be defensive anyway.
                        continue;
                    }
                    let want = (dest.lid.raw() as usize + s) % count;
                    let pick = sorted_adj[s]
                        .iter()
                        .filter(minimal)
                        .nth(want)
                        .map(|&(_, p)| p);
                    stage[dest.lid.raw() as usize] = pick;
                }
            },
        );
        let decisions = (g.len() * g.destinations().len()) as u64;

        Ok(RoutingTables {
            lfts: stages_to_lfts(&g, stages),
            vls: switch_dest_vls(&g),
            engine: self.name(),
            decisions,
        })
    }

    /// Incremental repair: re-rank the degraded graph (one BFS — the tree
    /// structure is what the engine exploits, so it must be revalidated),
    /// then rerun the per-delivery-switch sweep for the dirty destination
    /// columns only and splice them into `prior`.
    ///
    /// The pick is *sticky*: the installed port is kept wherever it is
    /// still a minimal candidate on the degraded graph, and the d-mod-k
    /// spread decides only the entries the fault actually invalidated. A
    /// plain re-run of the d-mod-k formula would rotate every pick whose
    /// candidate *count* shrank — churning entries whose installed path
    /// never crossed the failed link and inflating the dirty-block diff
    /// past the full sweep's. The result approximates (it is not
    /// byte-equal to) a full recompute, which is why the SM gates every
    /// repair behind the fabric verifier.
    fn incremental_repair(&self) -> bool {
        true
    }

    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        // No usable baseline: fall back to the full compute.
        if g.is_empty() || (0..g.len()).any(|s| !prior.lfts.contains_key(&g.node_id(s))) {
            return self.compute_with(subnet, opts, observer);
        }
        let _span = observer.span("routing.fat-tree.repair");
        // A fault cannot un-layer a fat tree, but it can disconnect a
        // switch — revalidate so a broken tree errors out to the SM's
        // fallback instead of producing silent holes.
        let ranks = g.ranks();
        validate_fat_tree(g, &ranks)?;

        let dirty: FxHashSet<u16> = dirty_dests.iter().map(|l| l.raw()).collect();
        let dirty_dests: Vec<Destination> = g
            .destinations()
            .iter()
            .copied()
            .filter(|d| dirty.contains(&d.lid.raw()))
            .collect();
        let mut out = prior.clone();
        out.engine = self.name();
        out.vls = switch_dest_vls(g);
        out.decisions = 0;
        if dirty_dests.is_empty() {
            return Ok(out);
        }

        // Switch-destined dirty columns rebuild their valley routes on
        // the degraded graph; hub BFS is fault-stable, so the sticky
        // splice below churns only near the lost link.
        let swcols = dirty_dests
            .iter()
            .any(|d| d.port == PortNum::MANAGEMENT)
            .then(|| SwitchColumns::new(g, opts.effective_workers(g.len())));

        // One BFS per dirty HCA-destined delivery switch — the
        // repair-sized slice of the full compute's per-delivery sweep.
        let mut dirty_switches: Vec<usize> = dirty_dests
            .iter()
            .filter(|d| d.port != PortNum::MANAGEMENT)
            .map(|d| d.switch)
            .collect();
        dirty_switches.sort_unstable();
        dirty_switches.dedup();
        let row_of: FxHashMap<usize, usize> = dirty_switches
            .iter()
            .enumerate()
            .map(|(i, &s)| (s, i))
            .collect();
        let dist = DistanceMatrix::for_sources(
            g,
            &dirty_switches,
            opts.effective_workers(dirty_switches.len()),
        );

        let sorted_adj: Vec<Vec<(u32, PortNum)>> = (0..g.len())
            .map(|s| {
                let mut v = g.neighbors(s).to_vec();
                v.sort_unstable_by_key(|&(_, p)| p);
                v
            })
            .collect();

        let mut decisions = 0u64;
        let mut column: Vec<Option<PortNum>> = vec![None; g.len()];
        for dest in &dirty_dests {
            if dest.port == PortNum::MANAGEMENT {
                for (s, slot) in column.iter_mut().enumerate() {
                    decisions += 1;
                    *slot = if s == dest.switch {
                        Some(dest.port)
                    } else {
                        // Sticky: keep the installed port while it is
                        // still valley-legal on the degraded graph, so
                        // the splice rewrites only what the fault broke.
                        let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                        swcols
                            .as_ref()
                            .and_then(|sw| sw.sticky_pick(dest.switch, dest.lid, s, installed))
                    };
                }
                out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
                continue;
            }
            let drow = dist.row(row_of[&dest.switch]);
            for (s, slot) in column.iter_mut().enumerate() {
                decisions += 1;
                if s == dest.switch {
                    *slot = Some(dest.port);
                    continue;
                }
                if drow[s] == u32::MAX {
                    // The fault split the fabric: this switch can no
                    // longer reach the destination. Clear the row rather
                    // than leave it pointing into the lost component.
                    *slot = None;
                    continue;
                }
                let minimal =
                    |&&(v, _): &&(u32, PortNum)| drow[v as usize].wrapping_add(1) == drow[s];
                // Sticky selection: keep the installed port whenever it is
                // still minimal (a port into the failed link never is —
                // the link is gone from the graph), so the splice touches
                // only the entries the fault invalidated. Fall back to the
                // d-mod-k spread over the degraded candidate set.
                let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                if let Some(p) = installed {
                    if sorted_adj[s]
                        .iter()
                        .any(|&(v, q)| q == p && drow[v as usize].wrapping_add(1) == drow[s])
                    {
                        *slot = Some(p);
                        continue;
                    }
                }
                let count = sorted_adj[s].iter().filter(minimal).count();
                if count == 0 {
                    *slot = None;
                    continue;
                }
                let want = (dest.lid.raw() as usize + s) % count;
                *slot = sorted_adj[s]
                    .iter()
                    .filter(minimal)
                    .nth(want)
                    .map(|&(_, p)| p);
            }
            out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
        }
        out.decisions = decisions;
        Ok(out)
    }
}

/// A fat tree must be layered: every switch-switch edge joins adjacent
/// ranks. (Endpoints may sit on any rank-0 switch; `SwitchGraph::ranks`
/// already guarantees endpoint-bearing switches are rank 0.)
fn validate_fat_tree(g: &SwitchGraph, ranks: &[u32]) -> IbResult<()> {
    for s in 0..g.len() {
        if ranks[s] == u32::MAX {
            // A split fabric: `s` sits in a component with no ranked
            // seed. Its edges all stay inside that component (a BFS
            // would have crossed any cable to a ranked switch), so
            // there is nothing to validate — the reachable part of the
            // tree is still layered and still routable.
            continue;
        }
        for &(v, _) in g.neighbors(s) {
            let (a, b) = (ranks[s], ranks[v as usize]);
            if a.abs_diff(b) != 1 {
                return Err(IbError::Topology(format!(
                    "not a layered fat tree: edge joins ranks {a} and {b}"
                )));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_full_reachability, assign_lids, host_lid};
    use ib_subnet::topology::fattree::{three_level, two_level};
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn routes_two_level() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = FatTree.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn routes_three_level() {
        let mut t = three_level(2, 2, 2, 2);
        assign_lids(&mut t);
        let tables = FatTree.compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
    }

    #[test]
    fn rejects_torus() {
        let mut t = torus_2d(3, 3, 1, true);
        assign_lids(&mut t);
        assert!(FatTree.compute(&t.subnet).is_err());
    }

    #[test]
    fn spreads_destinations_over_uplinks() {
        let mut t = two_level(2, 6, 3);
        assign_lids(&mut t);
        let tables = FatTree.compute(&t.subnet).unwrap();
        let leaf0 = t.switch_levels[0][0];
        let lft = &tables.lfts[&leaf0];
        let mut ports: Vec<u8> = (6..12)
            .map(|i| lft.get(host_lid(&t, i)).unwrap().raw())
            .collect();
        ports.sort_unstable();
        ports.dedup();
        assert!(
            ports.len() == 3,
            "six cross-leaf destinations over three uplinks, got {ports:?}"
        );
    }

    #[test]
    fn different_vms_on_same_leaf_can_take_different_spines() {
        // §V-A: prepopulated LIDs imitate LMC — distinct paths to different
        // LIDs on the same hypervisor/leaf. With d-mod-k spreading, two
        // consecutive LIDs on the same destination leaf use different
        // uplinks from a remote leaf.
        let mut t = two_level(2, 4, 2);
        assign_lids(&mut t);
        let tables = FatTree.compute(&t.subnet).unwrap();
        let leaf0 = t.switch_levels[0][0];
        let lft = &tables.lfts[&leaf0];
        let p_a = lft.get(host_lid(&t, 4)).unwrap();
        let p_b = lft.get(host_lid(&t, 5)).unwrap();
        assert_ne!(p_a, p_b);
    }

    #[test]
    fn fewer_bfs_than_minhop_decisions_equal() {
        // Both engines make |switches| x |LIDs| decisions; the fat-tree
        // engine just reaches them with fewer BFS sweeps.
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let ft = FatTree.compute(&t.subnet).unwrap();
        let mh = crate::minhop::MinHop.compute(&t.subnet).unwrap();
        assert_eq!(ft.decisions, mh.decisions);
    }
}
