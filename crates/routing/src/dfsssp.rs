//! DFSSSP: deadlock-free single-source-shortest-path routing.
//!
//! Two phases, mirroring Domke et al. (reference [28] of the paper, the
//! same work the paper cites for multi-minute path computation times):
//!
//! 1. **SSSP routing** — one weighted Dijkstra per delivery switch, with
//!    link weights incremented as destinations are routed so later
//!    destinations avoid loaded links.
//! 2. **VL partitioning** — destinations start on VL0; while a lane's
//!    channel dependency graph contains a cycle, one witness destination of
//!    a cycle edge is lifted to the next lane. Each lane ends up acyclic,
//!    hence deadlock-free.
//!
//! Both phases cost markedly more than Min-Hop's BFS — the reason DFSSSP
//! sits an order of magnitude above Min-Hop in Fig. 7. Phase timings land
//! in the `routing.dfsssp.distances` / `routing.dfsssp.vl_partition`
//! observe spans. The weight-feedback loop makes phase 1 inherently
//! serial (each group's Dijkstra reads the weights every earlier group
//! wrote), so only the next-hop precompute of phase 2 fans across
//! workers; the tables are identical for every worker count.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use ib_observe::Observer;
use ib_subnet::Subnet;
use ib_types::{IbError, IbResult, PortNum, VirtualLane};
use rustc_hash::FxHashMap;

use crate::cdg::{Cdg, Channel};
use crate::engine::{RoutingEngine, RoutingOptions};
use crate::graph::{parallel_for_each, SwitchGraph};
use crate::tables::{stages_to_lfts, RoutingTables, VlAssignment};

/// The DFSSSP engine.
#[derive(Clone, Copy, Debug)]
pub struct Dfsssp {
    /// Number of data VLs available for layering.
    pub max_vls: u8,
}

impl Default for Dfsssp {
    fn default() -> Self {
        // The full IBA data-VL range. OpenSM defaults to 8 data VLs but
        // the lane budget is configurable; 3-level fat trees with
        // switch-LID destinations need more than 8 under this layer-
        // assignment heuristic (see EXPERIMENTS.md).
        Self { max_vls: 15 }
    }
}

impl RoutingEngine for Dfsssp {
    fn name(&self) -> &'static str {
        "dfsssp"
    }

    fn compute_with(
        &self,
        subnet: &Subnet,
        opts: RoutingOptions,
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        let g = SwitchGraph::build(subnet)?;
        if g.is_empty() {
            return Ok(RoutingTables {
                lfts: FxHashMap::default(),
                vls: VlAssignment::SingleVl,
                engine: self.name(),
                decisions: 0,
            });
        }
        let n = g.len();

        // Incoming adjacency: in_edges[v] = (source switch s, s's port to v).
        let mut in_edges: Vec<Vec<(usize, PortNum)>> = vec![Vec::new(); n];
        for s in 0..n {
            for &(v, p) in g.neighbors(s) {
                in_edges[v as usize].push((s, p));
            }
        }

        // Directed link weights in a flat array keyed (switch, out-port):
        // every slot starts at the implicit weight 1, so `weight[idx] += 1`
        // is the `or_insert(1) += 1` of a map without the hashing.
        let stride = 1 + g.neighbors_max_port().unwrap_or(PortNum::MANAGEMENT).raw() as usize;
        let widx = move |s: usize, p: PortNum| s * stride + p.raw() as usize;
        let mut weight: Vec<u64> = vec![1; stride * n];

        // Destinations grouped by delivery switch, in switch order.
        let mut by_switch: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (i, d) in g.destinations().iter().enumerate() {
            by_switch.entry(d.switch).or_default().push(i);
        }
        let mut groups: Vec<(usize, Vec<usize>)> = by_switch.into_iter().collect();
        groups.sort_unstable_by_key(|(s, _)| *s);

        let mut stages: Vec<Vec<Option<PortNum>>> = vec![vec![None; g.lid_bound()]; n];
        let mut decisions = 0u64;

        // Phase 1 is the order-sensitive serial spine of DFSSSP: each
        // group's snapshot must reflect exactly the weight increments of
        // every earlier group, in group order.
        let phase1 = observer.span("routing.dfsssp.distances");
        let mut dist: Vec<(u32, u64)> = vec![(u32::MAX, u64::MAX); n];
        let mut heap = BinaryHeap::new();
        let mut candidates: Vec<PortNum> = Vec::new();
        for (dsw, dest_indices) in &groups {
            let dsw = *dsw;
            // Distances are computed against a snapshot of the weights;
            // updates made while routing this group's destinations only
            // influence later groups (OpenSM's dfsssp updates weights per
            // routed node the same way).
            let snapshot = weight.clone();
            // Dijkstra from the delivery switch over reversed edges with
            // lexicographic (hops, accumulated weight) cost: paths stay
            // minimal-hop (so the per-destination trees remain cycle-lean)
            // and the weights only arbitrate among equal-hop options —
            // DFSSSP's balancing without sacrificing minimality.
            dist.fill((u32::MAX, u64::MAX));
            dist[dsw] = (0, 0);
            heap.clear();
            heap.push(Reverse(((0u32, 0u64), dsw)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for &(s, p) in &in_edges[v] {
                    let nd = (d.0 + 1, d.1 + snapshot[widx(s, p)]);
                    if nd < dist[s] {
                        dist[s] = nd;
                        heap.push(Reverse((nd, s)));
                    }
                }
            }
            for &di in dest_indices {
                let dest = g.destinations()[di];
                let lid_idx = dest.lid.raw() as usize;
                for s in 0..n {
                    decisions += 1;
                    if s == dsw {
                        stages[s][lid_idx] = Some(dest.port);
                        continue;
                    }
                    if dist[s].0 == u32::MAX {
                        // Split fabric: `s` sits in another component. Its
                        // column entry stays `None` — an explicit hole —
                        // and every reachable pair still gets routed.
                        continue;
                    }
                    candidates.clear();
                    candidates.extend(
                        g.neighbors(s)
                            .iter()
                            .filter(|&&(v, p)| {
                                dist[v as usize].0 + 1 == dist[s].0
                                    && dist[v as usize].1 + snapshot[widx(s, p)] == dist[s].1
                            })
                            .map(|&(_, p)| p),
                    );
                    candidates.sort_unstable();
                    if candidates.is_empty() {
                        return Err(IbError::Topology("distance inversion in dfsssp".into()));
                    }
                    let pick = candidates[lid_idx % candidates.len()];
                    stages[s][lid_idx] = Some(pick);
                    weight[widx(s, pick)] += 1;
                }
            }
        }
        phase1.end();

        // Phase 2: Domke et al.'s layer assignment. Paths live in
        // virtual layers; while a layer's channel dependency graph has a
        // cycle, pick one edge per (edge-disjoint) cycle and move EVERY
        // path crossing that edge to the next layer — the edge vanishes
        // from this layer, so each pass makes guaranteed progress and the
        // moved sets stay small (one channel-pair's worth of paths, not
        // whole destination trees).
        //
        // Two deviations from a literal transcription, both conservative:
        // switch-LID paths (the only source of down-up turns on up*-down*
        // fabrics) start on lane 1 so the compute lane is clean from the
        // outset, and within a cycle the dissolved edge is the one with
        // the fewest contributing paths (Domke's edge weight), preferring
        // edges carrying switch-LID paths.
        let _phase2 = observer.span("routing.dfsssp.vl_partition");
        let nexts = build_nexts(
            &g,
            opts.effective_workers(g.destinations().len()),
            |s, lid| stages[s][lid.raw() as usize],
        );

        // Per-lane worklists of (source switch, destination index).
        let mut lane_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.max_vls as usize];
        for (di, dest) in g.destinations().iter().enumerate() {
            let start_lane = usize::from(self.max_vls > 1 && dest.port.is_management());
            for (src, row) in stages.iter().enumerate().take(n) {
                // Unroutable cross-component pairs have no path and hence
                // no channel dependencies: they never enter the layering.
                if src != dest.switch && row[dest.lid.raw() as usize].is_some() {
                    lane_pairs[start_lane].push((src as u32, di as u32));
                }
            }
        }
        let lane_of = lift_lanes(&g, &nexts, &mut lane_pairs, self.max_vls)?;

        let vls = lanes_to_assignment(lane_of);
        Ok(RoutingTables {
            lfts: stages_to_lfts(&g, stages),
            vls,
            engine: self.name(),
            decisions,
        })
    }

    /// Incremental repair: Dijkstra only from the dirty destinations'
    /// delivery switches (weights seeded from the clean columns kept from
    /// `prior`), splice the dirty columns into `prior`, then re-run the
    /// layer assignment over the spliced tables — clean paths start on
    /// their prior lanes, repaired paths start on the base lane, and the
    /// usual cycle-lifting restores per-lane acyclicity or errors out when
    /// lanes are exhausted (the SM then falls back to a full sweep).
    fn incremental_repair(&self) -> bool {
        true
    }

    fn repair_with_graph(
        &self,
        subnet: &Subnet,
        g: &SwitchGraph,
        opts: RoutingOptions,
        prior: &RoutingTables,
        dirty_dests: &[ib_types::Lid],
        observer: &Observer,
    ) -> IbResult<RoutingTables> {
        if g.is_empty() || (0..g.len()).any(|s| !prior.lfts.contains_key(&g.node_id(s))) {
            return self.compute_with(subnet, opts, observer);
        }
        let _span = observer.span("routing.dfsssp.repair");
        let n = g.len();
        let dirty: rustc_hash::FxHashSet<u16> = dirty_dests.iter().map(|l| l.raw()).collect();
        let mut out = prior.clone();
        out.engine = self.name();
        out.decisions = 0;
        if !g
            .destinations()
            .iter()
            .any(|d| dirty.contains(&d.lid.raw()))
        {
            return Ok(out);
        }

        let mut in_edges: Vec<Vec<(usize, PortNum)>> = vec![Vec::new(); n];
        for s in 0..n {
            for &(v, p) in g.neighbors(s) {
                in_edges[v as usize].push((s, p));
            }
        }
        let stride = 1 + g.neighbors_max_port().unwrap_or(PortNum::MANAGEMENT).raw() as usize;
        let widx = move |s: usize, p: PortNum| s * stride + p.raw() as usize;
        // Seed the link weights with the clean columns' picks, so the
        // repaired destinations balance against the traffic that stays
        // put — the same feedback a full recompute would have applied.
        let mut weight: Vec<u64> = vec![1; stride * n];
        for dest in g.destinations() {
            if dirty.contains(&dest.lid.raw()) {
                continue;
            }
            for s in 0..n {
                if s == dest.switch {
                    continue;
                }
                if let Some(p) = prior.lfts[&g.node_id(s)].get(dest.lid) {
                    let idx = widx(s, p);
                    if idx < weight.len() {
                        weight[idx] += 1;
                    }
                }
            }
        }

        // Dirty destinations grouped by delivery switch, in switch order —
        // the same serial weight-feedback discipline as the full compute.
        let mut by_switch: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
        for (i, d) in g.destinations().iter().enumerate() {
            if dirty.contains(&d.lid.raw()) {
                by_switch.entry(d.switch).or_default().push(i);
            }
        }
        let mut groups: Vec<(usize, Vec<usize>)> = by_switch.into_iter().collect();
        groups.sort_unstable_by_key(|(s, _)| *s);

        let mut decisions = 0u64;
        let mut dist: Vec<(u32, u64)> = vec![(u32::MAX, u64::MAX); n];
        let mut heap = BinaryHeap::new();
        let mut candidates: Vec<PortNum> = Vec::new();
        let mut column: Vec<Option<PortNum>> = vec![None; n];
        for (dsw, dest_indices) in &groups {
            let dsw = *dsw;
            let snapshot = weight.clone();
            dist.fill((u32::MAX, u64::MAX));
            dist[dsw] = (0, 0);
            heap.clear();
            heap.push(Reverse(((0u32, 0u64), dsw)));
            while let Some(Reverse((d, v))) = heap.pop() {
                if d > dist[v] {
                    continue;
                }
                for &(s, p) in &in_edges[v] {
                    let nd = (d.0 + 1, d.1 + snapshot[widx(s, p)]);
                    if nd < dist[s] {
                        dist[s] = nd;
                        heap.push(Reverse((nd, s)));
                    }
                }
            }
            for &di in dest_indices {
                let dest = g.destinations()[di];
                let lid_idx = dest.lid.raw() as usize;
                for (s, slot) in column.iter_mut().enumerate() {
                    decisions += 1;
                    if s == dsw {
                        *slot = Some(dest.port);
                        continue;
                    }
                    if dist[s].0 == u32::MAX {
                        // The fault split the fabric: clear this row
                        // instead of leaving it pointing at the lost
                        // component.
                        *slot = None;
                        continue;
                    }
                    candidates.clear();
                    candidates.extend(
                        g.neighbors(s)
                            .iter()
                            .filter(|&&(v, p)| {
                                dist[v as usize].0 + 1 == dist[s].0
                                    && dist[v as usize].1 + snapshot[widx(s, p)] == dist[s].1
                            })
                            .map(|&(_, p)| p),
                    );
                    candidates.sort_unstable();
                    if candidates.is_empty() {
                        return Err(IbError::Topology(
                            "distance inversion in dfsssp repair".into(),
                        ));
                    }
                    // Sticky: keep the installed port when it is still on
                    // a lexicographically-shortest path — the repair's
                    // diff stays minimal and only rows the fault actually
                    // invalidated get rewritten.
                    let installed = prior.lfts[&g.node_id(s)].get(dest.lid);
                    let pick = installed
                        .filter(|p| candidates.contains(p))
                        .unwrap_or_else(|| candidates[lid_idx % candidates.len()]);
                    weight[widx(s, pick)] += 1;
                    *slot = Some(pick);
                }
                out.set_column(dest.lid, |sw| g.index(sw).and_then(|s| column[s]));
            }
        }

        // Re-layer the spliced tables: clean pairs keep their prior lane,
        // repaired pairs restart on the base lane; lifting then repairs any
        // cycle the splice introduced.
        let nexts = build_nexts(
            g,
            opts.effective_workers(g.destinations().len()),
            |s, lid| out.lfts.get(&g.node_id(s)).and_then(|lft| lft.get(lid)),
        );
        let mut lane_pairs: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.max_vls as usize];
        for (di, dest) in g.destinations().iter().enumerate() {
            let start_lane = usize::from(self.max_vls > 1 && dest.port.is_management());
            for src in 0..n {
                if src == dest.switch {
                    continue;
                }
                // Cross-component pairs were cleared by the splice: no
                // path, no dependencies, no lane.
                if out
                    .lfts
                    .get(&g.node_id(src))
                    .and_then(|lft| lft.get(dest.lid))
                    .is_none()
                {
                    continue;
                }
                let lane = if dirty.contains(&dest.lid.raw()) {
                    start_lane
                } else {
                    (prior
                        .vls
                        .lane_for(src as u32, dest.switch as u32, dest.lid)
                        .raw() as usize)
                        .min(self.max_vls as usize - 1)
                };
                lane_pairs[lane].push((src as u32, di as u32));
            }
        }
        let lane_of = lift_lanes(g, &nexts, &mut lane_pairs, self.max_vls)?;
        out.vls = lanes_to_assignment(lane_of);
        out.decisions = decisions;
        Ok(out)
    }
}

/// Precomputes per-destination next-hop tables (`nexts[di][s]` = (out port,
/// neighbor switch) for destination `di` at switch `s`), fanned across
/// workers; `row` supplies the LFT row to read (staging or spliced tables).
fn build_nexts<F>(g: &SwitchGraph, workers: usize, row: F) -> Vec<Vec<Option<(u8, usize)>>>
where
    F: Fn(usize, ib_types::Lid) -> Option<PortNum> + Sync,
{
    let port_to_switch: Vec<FxHashMap<u8, usize>> = (0..g.len())
        .map(|s| {
            g.neighbors(s)
                .iter()
                .map(|&(v, p)| (p.raw(), v as usize))
                .collect()
        })
        .collect();
    let mut nexts: Vec<Vec<Option<(u8, usize)>>> =
        vec![vec![None; g.len()]; g.destinations().len()];
    parallel_for_each(
        &mut nexts,
        workers,
        || (),
        |(), di, next| {
            let dest = &g.destinations()[di];
            for (s, slot) in next.iter_mut().enumerate() {
                if let Some(p) = row(s, dest.lid) {
                    if !p.is_management() {
                        if let Some(&v) = port_to_switch[s].get(&p.raw()) {
                            *slot = Some((p.raw(), v));
                        }
                    }
                }
            }
        },
    );
    nexts
}

/// Domke et al.'s layer assignment over precomputed next-hop tables: while
/// a lane's CDG has a cycle, dissolve one edge per cycle and move every
/// path crossing it up a lane. Mutates `lane_pairs` in place and returns
/// the final `(source switch, destination LID) -> lane` map (lane 0
/// implicit). Errors when the lane budget is exhausted.
fn lift_lanes(
    g: &SwitchGraph,
    nexts: &[Vec<Option<(u8, usize)>>],
    lane_pairs: &mut [Vec<(u32, u32)>],
    max_vls: u8,
) -> IbResult<FxHashMap<(u32, u16), u8>> {
    let n = g.len();
    let debug = std::env::var_os("IB_DFSSSP_DEBUG").is_some();

    // Walks a pair's channel path, feeding each consecutive channel
    // pair to `visit`; stops early when `visit` returns false.
    let walk = |src: u32, di: u32, visit: &mut dyn FnMut(Channel, Channel) -> bool| {
        let dest = &g.destinations()[di as usize];
        let next = &nexts[di as usize];
        let mut cur = src as usize;
        let mut prev: Option<Channel> = None;
        let mut hops = 0;
        while let Some((p, v)) = next[cur] {
            let ch: Channel = (cur as u32, p);
            if let Some(pr) = prev {
                if !visit(pr, ch) {
                    return;
                }
            }
            prev = Some(ch);
            cur = v;
            hops += 1;
            if cur == dest.switch || hops > n {
                return;
            }
        }
    };

    for lane in 0..max_vls as usize {
        loop {
            // Build this lane's CDG from its worklist.
            let mut cdg = Cdg::new();
            for &(src, di) in &lane_pairs[lane] {
                let dest = &g.destinations()[di as usize];
                let pair = (src, dest.lid.raw());
                let is_switch_lid = dest.port.is_management();
                walk(src, di, &mut |a, b| {
                    let ia = cdg.intern(a);
                    let ib = cdg.intern(b);
                    cdg.add_pair_edge(ia, ib, pair);
                    if is_switch_lid {
                        cdg.add_switch_witness(ia, ib, pair);
                    }
                    true
                });
            }
            let cycles = cdg.find_cycles();
            if debug {
                eprintln!(
                    "dfsssp: lane {lane}: {} pairs, {} channels, {} edges, {} cycles",
                    lane_pairs[lane].len(),
                    cdg.num_channels(),
                    cdg.num_edges(),
                    cycles.len(),
                );
            }
            if cycles.is_empty() {
                break;
            }
            if lane + 1 >= max_vls as usize {
                return Err(IbError::Topology(format!(
                    "dfsssp: virtual lanes exhausted ({max_vls}) breaking cycles"
                )));
            }
            // Dissolve the cheapest edge of every cycle not already
            // broken by an earlier dissolution this pass; prefer edges
            // carrying switch-LID paths.
            let mut dissolved_ids: FxHashMap<(usize, usize), ()> = FxHashMap::default();
            let mut dissolve: FxHashMap<(Channel, Channel), ()> = FxHashMap::default();
            for cycle in &cycles {
                if cycle.iter().any(|e| dissolved_ids.contains_key(e)) {
                    continue; // already broken this pass
                }
                let best = cycle
                    .iter()
                    .min_by_key(|&&(a, b)| {
                        (
                            cdg.switch_pair_witness_of(a, b).is_none(),
                            cdg.edge_count_of(a, b),
                        )
                    })
                    .copied()
                    .expect("cycle is non-empty");
                dissolved_ids.insert(best, ());
                dissolve.insert((cdg.channel(best.0), cdg.channel(best.1)), ());
            }
            // Move every path crossing a dissolved edge up one lane.
            let pairs = std::mem::take(&mut lane_pairs[lane]);
            for (src, di) in pairs {
                let mut moved = false;
                walk(src, di, &mut |a, b| {
                    if dissolve.contains_key(&(a, b)) {
                        moved = true;
                        false
                    } else {
                        true
                    }
                });
                if moved {
                    lane_pairs[lane + 1].push((src, di));
                } else {
                    lane_pairs[lane].push((src, di));
                }
            }
        }
    }

    // Assemble the final assignment (lane 0 stays implicit).
    let mut lane_of: FxHashMap<(u32, u16), u8> = FxHashMap::default();
    for (lane, pairs) in lane_pairs.iter().enumerate().skip(1) {
        for &(src, di) in pairs {
            lane_of.insert((src, g.destinations()[di as usize].lid.raw()), lane as u8);
        }
    }
    Ok(lane_of)
}

/// Wraps a lane map into the [`VlAssignment`] DFSSSP reports.
fn lanes_to_assignment(lane_of: FxHashMap<(u32, u16), u8>) -> VlAssignment {
    if lane_of.is_empty() {
        VlAssignment::SingleVl
    } else {
        VlAssignment::PerSourceDestination(
            lane_of
                .into_iter()
                .map(|(k, l)| (k, VirtualLane::new(l).expect("lane < 15")))
                .collect(),
        )
    }
}

/// Builds the CDG of one lane from per-path walks: for every destination
/// riding `lane` and every source switch, the consecutive channel
/// dependencies along the LFT walk are absorbed, witnessed by the
/// `(source switch, destination LID)` pair.
fn build_lane_cdg(
    g: &SwitchGraph,
    tables: &RoutingTables,
    lane_of: &FxHashMap<(u32, u16), u8>,
    lane: u8,
) -> IbResult<Cdg> {
    // Per-switch port -> neighbor-switch map.
    let port_to_switch: Vec<FxHashMap<u8, usize>> = (0..g.len())
        .map(|s| {
            g.neighbors(s)
                .iter()
                .map(|&(v, p)| (p.raw(), v as usize))
                .collect()
        })
        .collect();
    let mut cdg = Cdg::new();
    for dest in g.destinations() {
        // next[s] = (port, neighbor switch) for this LID, if it stays in
        // the switch fabric.
        let mut next: Vec<Option<(u8, usize)>> = vec![None; g.len()];
        for (s, n) in next.iter_mut().enumerate() {
            let Some(lft) = tables.lfts.get(&g.node_id(s)) else {
                continue;
            };
            if let Some(p) = lft.get(dest.lid) {
                if !p.is_management() {
                    if let Some(&v) = port_to_switch[s].get(&p.raw()) {
                        *n = Some((p.raw(), v));
                    }
                }
            }
        }
        for src in 0..g.len() {
            if src == dest.switch {
                continue;
            }
            let pair = (src as u32, dest.lid.raw());
            if lane_of.get(&pair).copied().unwrap_or(0) != lane {
                continue;
            }
            // Walk the path, absorbing consecutive dependencies. Witness
            // preference: switch-LID destinations. Host in-trees are
            // jointly acyclic wherever shortest paths are up*-down*
            // (fat trees), so cycles necessarily involve switch-LID
            // paths; lifting those first converges instead of dragging
            // thousands of innocent host paths up the lanes.
            let is_switch_lid = dest.port.is_management();
            let mut cur = src;
            let mut prev: Option<usize> = None;
            let mut hops = 0;
            while let Some((p, v)) = next[cur] {
                let ch = cdg.intern((cur as u32, p));
                if let Some(pr) = prev {
                    cdg.add_pair_edge(pr, ch, pair);
                    if is_switch_lid {
                        cdg.add_switch_witness(pr, ch, pair);
                    }
                }
                prev = Some(ch);
                cur = v;
                hops += 1;
                if cur == dest.switch {
                    break;
                }
                if hops > g.len() {
                    return Err(IbError::Topology(format!(
                        "routing loop for LID {}",
                        dest.lid
                    )));
                }
            }
        }
    }
    Ok(cdg)
}

/// Verifies that every VL layer of a DFSSSP result has an acyclic CDG by
/// re-deriving each lane's dependencies from the tables.
pub fn verify_layers_acyclic(subnet: &Subnet, tables: &RoutingTables) -> IbResult<()> {
    let g = SwitchGraph::build(subnet)?;
    match &tables.vls {
        VlAssignment::SingleVl => {
            let cdg = Cdg::from_tables(&g, tables, |_| true);
            if let Some(cycle) = cdg.find_cycle() {
                return Err(IbError::Topology(format!(
                    "single-VL CDG has a {}-channel cycle",
                    cycle.len()
                )));
            }
            Ok(())
        }
        VlAssignment::PerSourceDestination(map) => {
            let lane_of: FxHashMap<(u32, u16), u8> =
                map.iter().map(|(&k, &l)| (k, l.raw())).collect();
            let mut lanes: Vec<u8> = lane_of.values().copied().collect();
            lanes.push(0);
            lanes.sort_unstable();
            lanes.dedup();
            for lane in lanes {
                let cdg = build_lane_cdg(&g, tables, &lane_of, lane)?;
                if let Some(cycle) = cdg.find_cycle() {
                    return Err(IbError::Topology(format!(
                        "VL{lane} CDG has a {}-channel cycle",
                        cycle.len()
                    )));
                }
            }
            Ok(())
        }
        VlAssignment::PerDestination(map) => {
            let mut lanes: Vec<u8> = map.values().map(|l| l.raw()).collect();
            lanes.push(0);
            lanes.sort_unstable();
            lanes.dedup();
            for lane in lanes {
                let cdg = Cdg::from_tables(&g, tables, |d| {
                    map.get(&d.lid.raw()).map_or(0, |l| l.raw()) == lane
                });
                if let Some(cycle) = cdg.find_cycle() {
                    return Err(IbError::Topology(format!(
                        "VL{lane} CDG has a {}-channel cycle",
                        cycle.len()
                    )));
                }
            }
            Ok(())
        }
        VlAssignment::PerSwitchPair(_) => Err(IbError::Topology(
            "per-switch-pair assignments are verified by the LASH module".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{assert_full_reachability, assign_lids};
    use ib_subnet::topology::fattree::two_level;
    use ib_subnet::topology::irregular::{irregular, IrregularSpec};
    use ib_subnet::topology::torus::torus_2d;

    #[test]
    fn fat_tree_keeps_host_traffic_on_vl0() {
        let mut t = two_level(4, 3, 2);
        assign_lids(&mut t);
        let tables = Dfsssp::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        // Host destinations never leave VL0 on a fat tree; only the
        // switch-LID management paths ride the separated lane 1.
        match &tables.vls {
            VlAssignment::PerSourceDestination(map) => {
                // Switch LIDs are 1..=6 under assign_lids (6 switches).
                assert!(
                    map.keys().all(|&(_, lid)| lid <= 6),
                    "a host pair left VL0: {map:?}"
                );
                assert!(map.values().all(|l| l.raw() == 1));
            }
            other => panic!("unexpected assignment {other:?}"),
        }
        verify_layers_acyclic(&t.subnet, &tables).unwrap();
    }

    #[test]
    fn torus_gets_layered_and_each_layer_acyclic() {
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let tables = Dfsssp::default().compute(&t.subnet).unwrap();
        assert_full_reachability(&t.subnet, &tables);
        match &tables.vls {
            VlAssignment::PerSourceDestination(map) => {
                assert!(map.values().any(|l| l.raw() > 0), "no lifting happened");
            }
            VlAssignment::SingleVl => {
                // Acceptable only if the single layer is truly acyclic.
            }
            other => panic!("unexpected VL assignment {other:?}"),
        }
        verify_layers_acyclic(&t.subnet, &tables).unwrap();
    }

    #[test]
    fn irregular_layers_acyclic() {
        for seed in 0..3 {
            let mut t = irregular(IrregularSpec {
                num_switches: 9,
                num_hosts: 18,
                extra_links: 6,
                seed,
            });
            assign_lids(&mut t);
            let tables = Dfsssp::default().compute(&t.subnet).unwrap();
            assert_full_reachability(&t.subnet, &tables);
            verify_layers_acyclic(&t.subnet, &tables).unwrap();
        }
    }

    #[test]
    fn exhausting_vls_is_an_error_not_a_panic() {
        // With a single VL, a torus cannot be made deadlock-free by
        // lifting; the engine must report failure.
        let mut t = torus_2d(4, 4, 1, true);
        assign_lids(&mut t);
        let engine = Dfsssp { max_vls: 1 };
        let err = engine.compute(&t.subnet);
        assert!(err.is_err());
    }

    #[test]
    fn emits_phase_spans() {
        let mut t = two_level(2, 2, 2);
        assign_lids(&mut t);
        let observer = Observer::metrics();
        Dfsssp::default()
            .compute_with(&t.subnet, RoutingOptions::default(), &observer)
            .unwrap();
        let snap = observer.snapshot().expect("metrics enabled");
        for span in ["routing.dfsssp.distances", "routing.dfsssp.vl_partition"] {
            assert!(
                snap.spans.iter().any(|s| s.name == span),
                "missing span {span}: {:?}",
                snap.spans
            );
        }
    }
}
