//! Worker-count invariance: the whole point of `RoutingOptions` is that it
//! changes *when* routes are computed, never *what* is computed. For every
//! engine and a spread of topologies (the paper's Fig. 7 fat trees plus a
//! torus, where the VL-layering engines actually have cycles to break),
//! `compute_with` must return identical tables — LFT bytes, VL assignment,
//! decision count — at 1 worker, 2 workers, and auto (`0`).

use ib_observe::Observer;
use ib_routing::testutil::assign_lids;
use ib_routing::{EngineKind, RoutingEngine, RoutingOptions, RoutingTables};
use ib_subnet::topology::{fattree, torus, BuiltTopology};

fn compute(engine: &dyn RoutingEngine, t: &BuiltTopology, workers: usize) -> RoutingTables {
    engine
        .compute_with(
            &t.subnet,
            RoutingOptions::default().with_workers(workers),
            &Observer::disabled(),
        )
        .expect("engine computes")
}

fn assert_worker_count_invariant(mut t: BuiltTopology, engines: &[EngineKind]) {
    assign_lids(&mut t);
    for &kind in engines {
        let engine = kind.build();
        let reference = compute(engine.as_ref(), &t, 1);
        assert!(
            reference.decisions > 0,
            "{kind} on {}: no routing decisions",
            t.name
        );
        for workers in [2usize, 0] {
            let got = compute(engine.as_ref(), &t, workers);
            assert_eq!(
                reference.lfts, got.lfts,
                "{kind} on {}: LFTs differ at workers={workers}",
                t.name
            );
            assert_eq!(
                reference.vls, got.vls,
                "{kind} on {}: VL assignment differs at workers={workers}",
                t.name
            );
            assert_eq!(
                reference.decisions, got.decisions,
                "{kind} on {}: decision count differs at workers={workers}",
                t.name
            );
        }
    }
}

#[test]
fn all_engines_invariant_on_paper_324_fat_tree() {
    // The Fig. 7 entry point: 36 switches, 324 hosts, all five engines.
    assert_worker_count_invariant(fattree::paper_324(), &EngineKind::all());
}

#[test]
fn all_engines_invariant_on_odd_shaped_fat_tree() {
    // Asymmetric radices shake out chunk-boundary bugs the regular paper
    // trees would mask.
    assert_worker_count_invariant(fattree::two_level(4, 3, 2), &EngineKind::all());
}

#[test]
fn non_tree_engines_invariant_on_torus() {
    // A wrapped torus has cycles, so DFSSSP and LASH exercise their VL
    // lifting (serial by design) after the parallel distance phases.
    // Fat-tree routing rejects non-tree fabrics, so it sits this one out.
    assert_worker_count_invariant(
        torus::torus_2d(4, 4, 1, true),
        &[
            EngineKind::MinHop,
            EngineKind::UpDown,
            EngineKind::Dfsssp,
            EngineKind::Lash,
        ],
    );
}
