//! The subnet graph: node arena, cabling, LID registry, validation, and
//! packet tracing.

use ib_types::{
    guid::{GuidFactory, NAMESPACE_HCA, NAMESPACE_SWITCH, NAMESPACE_VGUID},
    Guid, IbError, IbResult, Lid, PortNum,
};
use rustc_hash::FxHashMap;

use crate::lft::Lft;
use crate::node::{Endpoint, Node, NodeId, NodeKind, PortState};

/// A complete InfiniBand subnet.
///
/// Nodes live in an append-only arena indexed by [`NodeId`]; links are stored
/// symmetrically on both ports; LIDs are registered in a LID→endpoint map
/// that answers "who owns this LID" in O(1) — the question every LFT entry
/// ultimately encodes.
///
/// ```
/// use ib_subnet::Subnet;
/// use ib_types::{Lid, PortNum};
///
/// let mut s = Subnet::new();
/// let sw = s.add_switch("sw", 4);
/// let a = s.add_hca("a");
/// let b = s.add_hca("b");
/// s.connect(sw, PortNum::new(1), a, PortNum::new(1)).unwrap();
/// s.connect(sw, PortNum::new(2), b, PortNum::new(1)).unwrap();
/// s.assign_port_lid(b, PortNum::new(1), Lid::from_raw(7)).unwrap();
/// s.lft_mut(sw).unwrap().set(Lid::from_raw(7), PortNum::new(2));
///
/// let path = s.trace_route(a, Lid::from_raw(7), 8).unwrap();
/// assert_eq!(path, vec![a, sw, b]);
/// ```
#[derive(Clone, Debug)]
pub struct Subnet {
    nodes: Vec<Node>,
    lid_map: FxHashMap<u16, Endpoint>,
    guid_map: FxHashMap<u64, NodeId>,
    switch_guids: GuidFactory,
    hca_guids: GuidFactory,
    vguid_factory: GuidFactory,
    topology_epoch: u64,
}

impl Default for Subnet {
    fn default() -> Self {
        Self::new()
    }
}

impl Subnet {
    /// An empty subnet.
    #[must_use]
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            lid_map: FxHashMap::default(),
            guid_map: FxHashMap::default(),
            switch_guids: GuidFactory::new(NAMESPACE_SWITCH),
            hca_guids: GuidFactory::new(NAMESPACE_HCA),
            vguid_factory: GuidFactory::new(NAMESPACE_VGUID),
            topology_epoch: 0,
        }
    }

    /// A counter bumped on every change to the subnet's *routable shape* —
    /// node arena growth, cabling, link up/down toggles, node removal, and
    /// LID registry edits. Two observations with the same epoch are
    /// guaranteed to produce the same routing graph, so consumers (the
    /// SM's repair path) can cache derived structures like the CSR switch
    /// graph across quiet-epoch sweeps instead of rebuilding per trap.
    /// LFT edits do **not** bump the epoch: installed tables are routing
    /// output, not graph shape.
    #[must_use]
    pub fn topology_epoch(&self) -> u64 {
        self.topology_epoch
    }

    // ------------------------------------------------------------------
    // Construction
    // ------------------------------------------------------------------

    /// Adds a physical switch with `num_external_ports` cable ports.
    pub fn add_switch(&mut self, name: impl Into<String>, num_external_ports: u8) -> NodeId {
        let guid = self.switch_guids.mint();
        self.push_node(name.into(), guid, true, false, num_external_ports)
    }

    /// Adds an SR-IOV vSwitch (the switch an HCA *appears as* under the
    /// vSwitch architecture, §IV-B). It is excluded from physical-switch
    /// iteration and shares its LID with the PF, so none is stored here.
    pub fn add_vswitch(&mut self, name: impl Into<String>, num_external_ports: u8) -> NodeId {
        let guid = self.vguid_factory.mint();
        self.push_node(name.into(), guid, true, true, num_external_ports)
    }

    /// Adds an HCA endpoint with a single external port.
    pub fn add_hca(&mut self, name: impl Into<String>) -> NodeId {
        let guid = self.hca_guids.mint();
        self.push_node(name.into(), guid, false, false, 1)
    }

    /// Adds a virtual HCA (a VF exposed as a vHCA) with an SM-assigned vGUID.
    pub fn add_vhca(&mut self, name: impl Into<String>) -> NodeId {
        let guid = self.vguid_factory.mint();
        self.push_node(name.into(), guid, false, false, 1)
    }

    /// Mints a fresh virtual GUID without creating a node (used when a VM is
    /// given a vGUID before any vHCA exists for it).
    pub fn mint_vguid(&mut self) -> Guid {
        self.vguid_factory.mint()
    }

    fn push_node(
        &mut self,
        name: String,
        guid: Guid,
        is_switch: bool,
        is_vswitch: bool,
        num_external_ports: u8,
    ) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        let kind = if is_switch {
            NodeKind::Switch {
                lft: Lft::new(),
                lid: None,
                is_vswitch,
            }
        } else {
            NodeKind::Hca
        };
        self.nodes.push(Node {
            id,
            guid,
            name,
            kind,
            ports: vec![PortState::default(); usize::from(num_external_ports) + 1],
            dead: false,
        });
        self.guid_map.insert(guid.raw(), id);
        self.topology_epoch += 1;
        id
    }

    /// Cables two ports together. Both must exist, be external, and be free.
    pub fn connect(
        &mut self,
        a: NodeId,
        a_port: PortNum,
        b: NodeId,
        b_port: PortNum,
    ) -> IbResult<()> {
        if a == b {
            return Err(IbError::Topology(format!(
                "self-loop on node {} refused",
                self.nodes[a.index()].name
            )));
        }
        for &(n, p) in &[(a, a_port), (b, b_port)] {
            if !p.is_external() {
                return Err(IbError::Topology(format!("port {p} is not cable-bearing")));
            }
            let node = self
                .nodes
                .get(n.index())
                .ok_or_else(|| IbError::Topology(format!("node {n:?} does not exist")))?;
            let state = node
                .ports
                .get(p.raw() as usize)
                .ok_or_else(|| IbError::Topology(format!("{} has no port {p}", node.name)))?;
            if state.remote.is_some() {
                return Err(IbError::Topology(format!(
                    "{} port {p} is already cabled",
                    node.name
                )));
            }
        }
        self.nodes[a.index()].ports[a_port.raw() as usize].remote = Some(Endpoint::new(b, b_port));
        self.nodes[b.index()].ports[b_port.raw() as usize].remote = Some(Endpoint::new(a, a_port));
        self.topology_epoch += 1;
        Ok(())
    }

    /// Connects using the lowest free external port on each side.
    pub fn connect_free(&mut self, a: NodeId, b: NodeId) -> IbResult<(PortNum, PortNum)> {
        let pa = self
            .first_free_port(a)
            .ok_or_else(|| IbError::Topology(format!("{} has no free port", self.name_of(a))))?;
        let pb = self
            .first_free_port(b)
            .ok_or_else(|| IbError::Topology(format!("{} has no free port", self.name_of(b))))?;
        self.connect(a, pa, b, pb)?;
        Ok((pa, pb))
    }

    /// Removes the cable plugged into `(node, port)`, clearing both ends.
    /// Pulling the cable also clears any down flag — a fresh cable plugged
    /// into the port later starts in the up state.
    pub fn disconnect(&mut self, node: NodeId, port: PortNum) -> IbResult<()> {
        let remote = self
            .nodes
            .get(node.index())
            .and_then(|n| n.ports.get(port.raw() as usize))
            .and_then(|p| p.remote)
            .ok_or_else(|| {
                IbError::Topology(format!("{} port {port} is not cabled", self.name_of(node)))
            })?;
        let near = &mut self.nodes[node.index()].ports[port.raw() as usize];
        near.remote = None;
        near.down = false;
        let far = &mut self.nodes[remote.node.index()].ports[remote.port.raw() as usize];
        far.remote = None;
        far.down = false;
        self.topology_epoch += 1;
        Ok(())
    }

    /// Lowest-numbered free external port on `node`. Returns `None` for a
    /// node that does not exist (degraded-subnet callers may hold stale
    /// handles).
    #[must_use]
    pub fn first_free_port(&self, node: NodeId) -> Option<PortNum> {
        self.nodes
            .get(node.index())?
            .ports
            .iter()
            .enumerate()
            .skip(1)
            .find(|(_, p)| p.remote.is_none())
            .map(|(i, _)| PortNum::new(i as u8))
    }

    // ------------------------------------------------------------------
    // Fault state: link and node failures
    // ------------------------------------------------------------------

    /// Takes the link plugged into `(node, port)` down on **both** ends.
    /// The cabling is remembered, so [`Subnet::set_link_up`] restores the
    /// original topology. Discovery, routing, and packet tracing all stop
    /// seeing the link immediately.
    pub fn set_link_down(&mut self, node: NodeId, port: PortNum) -> IbResult<()> {
        let remote = self.cabled_neighbor(node, port).ok_or_else(|| {
            IbError::Topology(format!("{} port {port} is not cabled", self.name_of(node)))
        })?;
        self.nodes[node.index()].ports[port.raw() as usize].down = true;
        self.nodes[remote.node.index()].ports[remote.port.raw() as usize].down = true;
        self.topology_epoch += 1;
        Ok(())
    }

    /// Brings a downed link back up on both ends.
    pub fn set_link_up(&mut self, node: NodeId, port: PortNum) -> IbResult<()> {
        let remote = self.cabled_neighbor(node, port).ok_or_else(|| {
            IbError::Topology(format!("{} port {port} is not cabled", self.name_of(node)))
        })?;
        self.nodes[node.index()].ports[port.raw() as usize].down = false;
        self.nodes[remote.node.index()].ports[remote.port.raw() as usize].down = false;
        self.topology_epoch += 1;
        Ok(())
    }

    /// Whether `(node, port)` is cabled and the link is passing traffic.
    #[must_use]
    pub fn is_link_up(&self, node: NodeId, port: PortNum) -> bool {
        self.nodes
            .get(node.index())
            .and_then(|n| n.ports.get(port.raw() as usize))
            .is_some_and(|p| p.remote.is_some() && !p.down)
    }

    /// The far end of the cable at `(node, port)`, whether or not the link
    /// is up — the physical-cabling view behind the fault toggles.
    #[must_use]
    pub fn cabled_neighbor(&self, node: NodeId, port: PortNum) -> Option<Endpoint> {
        self.nodes
            .get(node.index())?
            .ports
            .get(port.raw() as usize)
            .and_then(|p| p.remote)
    }

    /// Kills a node (switch crash, HCA removal): marks it dead and takes
    /// every one of its links down. The node stays in the arena so
    /// `NodeId`s remain stable, but it disappears from the switch/HCA
    /// iterators, from discovery, and from routing. Its LID registrations
    /// are left for the subnet manager to prune during its re-sweep (the
    /// SM, not the fabric, owns the LID space).
    ///
    /// Returns the number of links taken down.
    pub fn remove_node(&mut self, node: NodeId) -> IbResult<usize> {
        if node.index() >= self.nodes.len() {
            return Err(IbError::Topology(format!("node {node:?} does not exist")));
        }
        let links: Vec<PortNum> = self.nodes[node.index()]
            .cabled_ports()
            .filter(|(p, _)| self.is_link_up(node, *p))
            .map(|(p, _)| p)
            .collect();
        for &port in &links {
            self.set_link_down(node, port)?;
        }
        self.nodes[node.index()].dead = true;
        self.topology_epoch += 1;
        Ok(links.len())
    }

    /// Whether a node exists and is alive.
    #[must_use]
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes.get(node.index()).is_some_and(Node::is_alive)
    }

    // ------------------------------------------------------------------
    // LID registry
    // ------------------------------------------------------------------

    /// Assigns `lid` to a switch (on its management port 0).
    pub fn assign_switch_lid(&mut self, node: NodeId, lid: Lid) -> IbResult<()> {
        if self.lid_map.contains_key(&lid.raw()) {
            return Err(IbError::Management(format!("LID {lid} already registered")));
        }
        match &mut self.nodes[node.index()].kind {
            NodeKind::Switch { lid: slot, .. } => {
                if let Some(old) = slot.take() {
                    self.lid_map.remove(&old.raw());
                }
                *slot = Some(lid);
            }
            NodeKind::Hca => {
                return Err(IbError::Management(format!(
                    "{} is not a switch",
                    self.nodes[node.index()].name
                )))
            }
        }
        self.lid_map
            .insert(lid.raw(), Endpoint::new(node, PortNum::MANAGEMENT));
        self.topology_epoch += 1;
        Ok(())
    }

    /// Assigns `lid` to an HCA port.
    pub fn assign_port_lid(&mut self, node: NodeId, port: PortNum, lid: Lid) -> IbResult<()> {
        if self.lid_map.contains_key(&lid.raw()) {
            return Err(IbError::Management(format!("LID {lid} already registered")));
        }
        let n = &mut self.nodes[node.index()];
        let state = n
            .ports
            .get_mut(port.raw() as usize)
            .ok_or_else(|| IbError::Management(format!("{} has no port {port}", n.name)))?;
        if let Some(old) = state.lid.take() {
            self.lid_map.remove(&old.raw());
        }
        state.lid = Some(lid);
        self.lid_map.insert(lid.raw(), Endpoint::new(node, port));
        self.topology_epoch += 1;
        Ok(())
    }

    /// Removes a LID assignment from wherever it lives (base or LMC-extra).
    pub fn clear_lid(&mut self, lid: Lid) -> IbResult<()> {
        let ep = self
            .lid_map
            .remove(&lid.raw())
            .ok_or_else(|| IbError::Management(format!("LID {lid} is not registered")))?;
        let n = &mut self.nodes[ep.node.index()];
        if ep.port.is_management() {
            if let NodeKind::Switch { lid: slot, .. } = &mut n.kind {
                *slot = None;
            }
        } else if let Some(state) = n.ports.get_mut(ep.port.raw() as usize) {
            if state.lid == Some(lid) {
                state.lid = None;
            } else {
                state.extra_lids.retain(|&l| l != lid);
            }
        }
        self.topology_epoch += 1;
        Ok(())
    }

    /// Assigns an LMC range to an HCA port: `base` (which must be aligned
    /// to `2^lmc`) plus the following `2^lmc - 1` sequential LIDs, all
    /// answering at the same port.
    ///
    /// This is IBA's multipathing primitive — and the constraint the
    /// paper's §V-A escapes: LMC LIDs must be *sequential and aligned*,
    /// so individual LIDs of the range cannot migrate; prepopulated
    /// vSwitch LIDs provide the same path diversity with no such tie.
    pub fn assign_lmc_range(
        &mut self,
        node: NodeId,
        port: PortNum,
        base: Lid,
        lmc: ib_types::Lmc,
    ) -> IbResult<()> {
        if lmc.base_of(base) != base {
            return Err(IbError::Management(format!(
                "LMC base LID {base} is not aligned to 2^{}",
                lmc.bits()
            )));
        }
        // All-or-nothing: check the whole range first.
        for off in 0..lmc.lid_count() {
            let raw = base.raw() + off;
            let l = Lid::new(raw).map_err(IbError::from)?;
            if self.lid_map.contains_key(&l.raw()) {
                return Err(IbError::Management(format!("LID {l} already registered")));
            }
        }
        self.assign_port_lid(node, port, base)?;
        for off in 1..lmc.lid_count() {
            let l = Lid::from_raw(base.raw() + off);
            self.lid_map.insert(l.raw(), Endpoint::new(node, port));
            self.nodes[node.index()].ports[port.raw() as usize]
                .extra_lids
                .push(l);
        }
        self.topology_epoch += 1;
        Ok(())
    }

    /// Who answers to `lid`.
    #[must_use]
    pub fn endpoint_of(&self, lid: Lid) -> Option<Endpoint> {
        self.lid_map.get(&lid.raw()).copied()
    }

    /// The node that owns `guid`.
    #[must_use]
    pub fn node_by_guid(&self, guid: Guid) -> Option<NodeId> {
        self.guid_map.get(&guid.raw()).copied()
    }

    /// Every registered LID, ascending.
    #[must_use]
    pub fn lids(&self) -> Vec<Lid> {
        let mut v: Vec<Lid> = self.lid_map.keys().map(|&raw| Lid::from_raw(raw)).collect();
        v.sort_unstable();
        v
    }

    /// The highest registered LID.
    #[must_use]
    pub fn topmost_lid(&self) -> Option<Lid> {
        self.lid_map.keys().max().map(|&raw| Lid::from_raw(raw))
    }

    /// Number of registered LIDs.
    #[must_use]
    pub fn num_lids(&self) -> usize {
        self.lid_map.len()
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Immutable node access.
    #[must_use]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable node access.
    #[must_use]
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// Node name, for diagnostics.
    #[must_use]
    pub fn name_of(&self, id: NodeId) -> &str {
        &self.nodes[id.index()].name
    }

    /// The far end of a *live* link. Returns `None` when the port is
    /// uncabled or the link is down, so packet tracing over a degraded
    /// fabric fails exactly where a real packet would be lost. Use
    /// [`Subnet::cabled_neighbor`] for the physical-cabling view.
    #[must_use]
    pub fn neighbor(&self, node: NodeId, port: PortNum) -> Option<Endpoint> {
        self.nodes
            .get(node.index())?
            .ports
            .get(port.raw() as usize)
            .and_then(|p| if p.down { None } else { p.remote })
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter()
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len()).map(NodeId::from_index)
    }

    /// All *live* switches, physical and virtual. Dead switches stay in the
    /// arena but are invisible here, so routing engines compute over the
    /// surviving fabric.
    pub fn switches(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_alive() && n.is_switch())
    }

    /// Live physical switches only — the set Algorithm 1 iterates over.
    pub fn physical_switches(&self) -> impl Iterator<Item = &Node> {
        self.nodes
            .iter()
            .filter(|n| n.is_alive() && n.is_physical_switch())
    }

    /// All live HCA nodes (physical PFs and virtual vHCAs).
    pub fn hcas(&self) -> impl Iterator<Item = &Node> {
        self.nodes.iter().filter(|n| n.is_alive() && n.is_hca())
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of physical switches.
    #[must_use]
    pub fn num_physical_switches(&self) -> usize {
        self.physical_switches().count()
    }

    /// Number of HCAs.
    #[must_use]
    pub fn num_hcas(&self) -> usize {
        self.hcas().count()
    }

    /// Number of cables (each counted once).
    #[must_use]
    pub fn num_links(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.connected_ports().map(move |(_, r)| (n.id, r)))
            .filter(|(a, r)| a.index() < r.node.index())
            .count()
    }

    /// The LFT of a switch.
    #[must_use]
    pub fn lft(&self, switch: NodeId) -> Option<&Lft> {
        self.nodes[switch.index()].lft()
    }

    /// Mutable LFT of a switch.
    #[must_use]
    pub fn lft_mut(&mut self, switch: NodeId) -> Option<&mut Lft> {
        self.nodes[switch.index()].lft_mut()
    }

    /// Replaces the LFT of a switch wholesale.
    pub fn set_lft(&mut self, switch: NodeId, lft: Lft) -> IbResult<()> {
        match self.nodes[switch.index()].lft_mut() {
            Some(slot) => {
                *slot = lft;
                Ok(())
            }
            None => Err(IbError::Management(format!(
                "{} is not a switch",
                self.nodes[switch.index()].name
            ))),
        }
    }

    /// Leaf switches: physical switches with at least one HCA or vSwitch
    /// attached. In the paper's terms these are non-blocking edge switches
    /// where intra-switch migration needs only one LFT update (§VI-D).
    #[must_use]
    pub fn leaf_switches(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.is_alive() && n.is_physical_switch())
            .filter(|n| {
                n.connected_ports()
                    .any(|(_, r)| !self.nodes[r.node.index()].is_physical_switch())
            })
            .map(|n| n.id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Validation and tracing
    // ------------------------------------------------------------------

    /// Checks structural invariants: symmetric cabling, in-range ports,
    /// LID-map consistency, and (if `require_connected`) a connected graph.
    pub fn validate(&self, require_connected: bool) -> IbResult<()> {
        for node in &self.nodes {
            for (port, remote) in node.connected_ports() {
                let far = self.nodes.get(remote.node.index()).ok_or_else(|| {
                    IbError::Topology(format!("dangling link from {}", node.name))
                })?;
                let back = far
                    .ports
                    .get(remote.port.raw() as usize)
                    .and_then(|p| p.remote)
                    .ok_or_else(|| {
                        IbError::Topology(format!(
                            "{}:{port} -> {}:{} has no return cable",
                            node.name, far.name, remote.port
                        ))
                    })?;
                if back != Endpoint::new(node.id, port) {
                    return Err(IbError::Topology(format!(
                        "asymmetric cable at {}:{port}",
                        node.name
                    )));
                }
            }
        }
        for (&raw, ep) in &self.lid_map {
            let node = self
                .nodes
                .get(ep.node.index())
                .ok_or_else(|| IbError::Management(format!("LID {raw} maps to missing node")))?;
            let found = node.lids().any(|l| l.raw() == raw);
            if !found {
                return Err(IbError::Management(format!(
                    "LID {raw} maps to {} which does not carry it",
                    node.name
                )));
            }
        }
        if require_connected && !self.nodes.is_empty() {
            let reached = self.bfs_reach(NodeId::from_index(0));
            if reached != self.nodes.len() {
                return Err(IbError::Topology(format!(
                    "subnet is disconnected: reached {reached} of {} nodes",
                    self.nodes.len()
                )));
            }
        }
        Ok(())
    }

    /// Checks the invariants of a *degraded* subnet — one with down links
    /// and/or dead nodes. Where [`Subnet::validate`] demands that every node
    /// be reachable, this only demands that the surviving fabric is sane:
    ///
    /// 1. cabling is symmetric (including down flags — a link must be down
    ///    on both ends or neither);
    /// 2. dead nodes have no live links;
    /// 3. every registered LID belongs to a node that actually carries it;
    /// 4. every registered LID is owned by an *alive* node that some
    ///    component of the fabric can still serve: a switch (however
    ///    isolated — a split strands whole components, and a heal restores
    ///    them in place), or an endpoint with at least one live uplink.
    ///    An endpoint whose every cable is down holds a LID no SM in any
    ///    component could ever route to — that one the SM must prune.
    pub fn validate_degraded(&self) -> IbResult<()> {
        for node in &self.nodes {
            for (port, remote) in node.cabled_ports() {
                let far = self.nodes.get(remote.node.index()).ok_or_else(|| {
                    IbError::Topology(format!("dangling link from {}", node.name))
                })?;
                let far_state = far.ports.get(remote.port.raw() as usize).ok_or_else(|| {
                    IbError::Topology(format!(
                        "{}:{port} -> {}:{} has no return port",
                        node.name, far.name, remote.port
                    ))
                })?;
                if far_state.remote != Some(Endpoint::new(node.id, port)) {
                    return Err(IbError::Topology(format!(
                        "asymmetric cable at {}:{port}",
                        node.name
                    )));
                }
                let near_down = node.ports[port.raw() as usize].down;
                if near_down != far_state.down {
                    return Err(IbError::Topology(format!(
                        "link {}:{port} <-> {}:{} is down on only one end",
                        node.name, far.name, remote.port
                    )));
                }
                if node.dead && !near_down {
                    return Err(IbError::Topology(format!(
                        "dead node {} still has live link on port {port}",
                        node.name
                    )));
                }
            }
        }
        for (&raw, ep) in &self.lid_map {
            let node = self
                .nodes
                .get(ep.node.index())
                .ok_or_else(|| IbError::Management(format!("LID {raw} maps to missing node")))?;
            if !node.lids().any(|l| l.raw() == raw) {
                return Err(IbError::Management(format!(
                    "LID {raw} maps to {} which does not carry it",
                    node.name
                )));
            }
            if node.dead {
                return Err(IbError::Management(format!(
                    "LID {raw} still registered on dead node {}",
                    node.name
                )));
            }
            if !node.is_switch() && node.connected_ports().next().is_none() {
                return Err(IbError::Management(format!(
                    "LID {raw} owned by {} which is unreachable on the degraded fabric",
                    node.name
                )));
            }
        }
        Ok(())
    }

    fn bfs_reach(&self, start: NodeId) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut queue = std::collections::VecDeque::new();
        seen[start.index()] = true;
        queue.push_back(start);
        let mut count = 1;
        while let Some(id) = queue.pop_front() {
            for (_, remote) in self.nodes[id.index()].connected_ports() {
                if !seen[remote.node.index()] {
                    seen[remote.node.index()] = true;
                    count += 1;
                    queue.push_back(remote.node);
                }
            }
        }
        count
    }

    /// Follows LFTs hop by hop from `from` towards `dst`, returning the node
    /// path (inclusive of endpoints) or an error describing where delivery
    /// failed. This is how tests prove that a reconfiguration actually left
    /// the fabric consistent, rather than trusting the algorithm.
    pub fn trace_route(&self, from: NodeId, dst: Lid, max_hops: usize) -> IbResult<Vec<NodeId>> {
        let target = self
            .endpoint_of(dst)
            .ok_or_else(|| IbError::Management(format!("destination LID {dst} unregistered")))?;
        let mut path = vec![from];
        let mut current = from;
        // An HCA source injects through its only cabled port.
        if self.nodes[current.index()].is_hca() {
            if current == target.node {
                return Ok(path);
            }
            let (_, remote) = self.nodes[current.index()]
                .connected_ports()
                .next()
                .ok_or_else(|| {
                    IbError::Topology(format!("{} is not cabled", self.name_of(from)))
                })?;
            current = remote.node;
            path.push(current);
        }
        for _ in 0..max_hops {
            let node = &self.nodes[current.index()];
            if current == target.node {
                return Ok(path);
            }
            let lft = node.lft().ok_or_else(|| {
                IbError::Topology(format!(
                    "packet for LID {dst} stranded at non-switch {}",
                    node.name
                ))
            })?;
            let out = lft.get(dst).ok_or_else(|| {
                IbError::Management(format!("{} has no LFT entry for LID {dst}", node.name))
            })?;
            if out.is_drop() {
                return Err(IbError::Management(format!(
                    "LID {dst} is dropped at {} (port 255)",
                    node.name
                )));
            }
            if out.is_management() {
                // Port 0 terminates at the switch itself.
                return if current == target.node {
                    Ok(path)
                } else {
                    Err(IbError::Management(format!(
                        "LID {dst} terminates at wrong switch {}",
                        node.name
                    )))
                };
            }
            let remote = self.neighbor(current, out).ok_or_else(|| {
                IbError::Topology(format!("{} LFT points out uncabled port {out}", node.name))
            })?;
            current = remote.node;
            path.push(current);
        }
        Err(IbError::Topology(format!(
            "packet for LID {dst} exceeded {max_hops} hops (loop?)"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// sw0 -- sw1, one HCA on each switch.
    fn two_switch_subnet() -> (Subnet, NodeId, NodeId, NodeId, NodeId) {
        let mut s = Subnet::new();
        let sw0 = s.add_switch("sw0", 4);
        let sw1 = s.add_switch("sw1", 4);
        let h0 = s.add_hca("h0");
        let h1 = s.add_hca("h1");
        s.connect(sw0, PortNum::new(1), sw1, PortNum::new(1))
            .unwrap();
        s.connect(sw0, PortNum::new(2), h0, PortNum::new(1))
            .unwrap();
        s.connect(sw1, PortNum::new(2), h1, PortNum::new(1))
            .unwrap();
        (s, sw0, sw1, h0, h1)
    }

    #[test]
    fn connect_is_symmetric_and_validated() {
        let (s, sw0, sw1, _, _) = two_switch_subnet();
        assert_eq!(
            s.neighbor(sw0, PortNum::new(1)),
            Some(Endpoint::new(sw1, PortNum::new(1)))
        );
        assert_eq!(
            s.neighbor(sw1, PortNum::new(1)),
            Some(Endpoint::new(sw0, PortNum::new(1)))
        );
        s.validate(true).unwrap();
        assert_eq!(s.num_links(), 3);
    }

    #[test]
    fn double_cabling_refused() {
        let (mut s, sw0, sw1, _, _) = two_switch_subnet();
        let err = s.connect(sw0, PortNum::new(1), sw1, PortNum::new(3));
        assert!(err.is_err());
    }

    #[test]
    fn disconnect_clears_both_ends() {
        let (mut s, sw0, sw1, _, _) = two_switch_subnet();
        s.disconnect(sw0, PortNum::new(1)).unwrap();
        assert_eq!(s.neighbor(sw0, PortNum::new(1)), None);
        assert_eq!(s.neighbor(sw1, PortNum::new(1)), None);
        assert!(s.disconnect(sw0, PortNum::new(1)).is_err());
        // The port is reusable afterwards.
        s.connect(sw0, PortNum::new(1), sw1, PortNum::new(1))
            .unwrap();
        s.validate(true).unwrap();
    }

    #[test]
    fn self_loop_refused() {
        let mut s = Subnet::new();
        let sw = s.add_switch("sw", 4);
        assert!(s.connect(sw, PortNum::new(1), sw, PortNum::new(2)).is_err());
    }

    #[test]
    fn lid_registry_roundtrip() {
        let (mut s, sw0, _, h0, _) = two_switch_subnet();
        s.assign_switch_lid(sw0, Lid::from_raw(10)).unwrap();
        s.assign_port_lid(h0, PortNum::new(1), Lid::from_raw(11))
            .unwrap();
        assert_eq!(
            s.endpoint_of(Lid::from_raw(10)),
            Some(Endpoint::new(sw0, PortNum::MANAGEMENT))
        );
        assert_eq!(
            s.endpoint_of(Lid::from_raw(11)),
            Some(Endpoint::new(h0, PortNum::new(1)))
        );
        assert_eq!(s.topmost_lid(), Some(Lid::from_raw(11)));
        s.validate(true).unwrap();
        s.clear_lid(Lid::from_raw(11)).unwrap();
        assert_eq!(s.endpoint_of(Lid::from_raw(11)), None);
        assert_eq!(s.num_lids(), 1);
    }

    #[test]
    fn lmc_range_assignment_and_teardown() {
        let (mut s, _, _, h0, _) = two_switch_subnet();
        let lmc = ib_types::Lmc::new(2).unwrap(); // 4 LIDs
                                                  // Misaligned base refused.
        assert!(s
            .assign_lmc_range(h0, PortNum::new(1), Lid::from_raw(6), lmc)
            .is_err());
        s.assign_lmc_range(h0, PortNum::new(1), Lid::from_raw(8), lmc)
            .unwrap();
        // All four LIDs answer at the same endpoint.
        for raw in 8..12 {
            assert_eq!(
                s.endpoint_of(Lid::from_raw(raw)).unwrap().node,
                h0,
                "LID {raw}"
            );
        }
        assert_eq!(s.num_lids(), 4);
        s.validate(true).unwrap();
        // Clearing an extra LID leaves the base; clearing the base leaves
        // the extras.
        s.clear_lid(Lid::from_raw(10)).unwrap();
        assert_eq!(s.endpoint_of(Lid::from_raw(10)), None);
        assert!(s.endpoint_of(Lid::from_raw(8)).is_some());
        s.clear_lid(Lid::from_raw(8)).unwrap();
        assert!(s.endpoint_of(Lid::from_raw(9)).is_some());
        s.validate(true).unwrap();
    }

    #[test]
    fn lmc_range_is_all_or_nothing() {
        let (mut s, _, _, h0, h1) = two_switch_subnet();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(10))
            .unwrap();
        let lmc = ib_types::Lmc::new(2).unwrap();
        // 8..12 collides with 10: nothing may be registered.
        assert!(s
            .assign_lmc_range(h0, PortNum::new(1), Lid::from_raw(8), lmc)
            .is_err());
        assert_eq!(s.endpoint_of(Lid::from_raw(8)), None);
        assert_eq!(s.num_lids(), 1);
    }

    #[test]
    fn duplicate_lid_refused() {
        let (mut s, sw0, sw1, _, _) = two_switch_subnet();
        s.assign_switch_lid(sw0, Lid::from_raw(10)).unwrap();
        assert!(s.assign_switch_lid(sw1, Lid::from_raw(10)).is_err());
    }

    #[test]
    fn reassigning_switch_lid_releases_old() {
        let (mut s, sw0, _, _, _) = two_switch_subnet();
        s.assign_switch_lid(sw0, Lid::from_raw(10)).unwrap();
        s.assign_switch_lid(sw0, Lid::from_raw(20)).unwrap();
        assert_eq!(s.endpoint_of(Lid::from_raw(10)), None);
        assert!(s.endpoint_of(Lid::from_raw(20)).is_some());
        s.validate(true).unwrap();
    }

    #[test]
    fn guid_lookup() {
        let (s, sw0, _, h0, _) = two_switch_subnet();
        let sw_guid = s.node(sw0).guid;
        let h_guid = s.node(h0).guid;
        assert_eq!(s.node_by_guid(sw_guid), Some(sw0));
        assert_eq!(s.node_by_guid(h_guid), Some(h0));
        assert_ne!(sw_guid, h_guid);
    }

    #[test]
    fn trace_route_delivers_cross_switch() {
        let (mut s, sw0, sw1, h0, h1) = two_switch_subnet();
        s.assign_port_lid(h0, PortNum::new(1), Lid::from_raw(1))
            .unwrap();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(2))
            .unwrap();
        // Route LID 2: sw0 forwards out port 1 (to sw1), sw1 out port 2.
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(1));
        s.lft_mut(sw1)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(2));
        let path = s.trace_route(h0, Lid::from_raw(2), 16).unwrap();
        assert_eq!(path, vec![h0, sw0, sw1, h1]);
    }

    #[test]
    fn trace_route_detects_missing_entry_and_drop() {
        let (mut s, sw0, _, h0, h1) = two_switch_subnet();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(2))
            .unwrap();
        assert!(s.trace_route(h0, Lid::from_raw(2), 16).is_err());
        s.lft_mut(sw0).unwrap().set(Lid::from_raw(2), PortNum::DROP);
        let err = s.trace_route(h0, Lid::from_raw(2), 16).unwrap_err();
        assert!(err.to_string().contains("dropped"));
    }

    #[test]
    fn trace_route_detects_loop() {
        let (mut s, sw0, sw1, h0, h1) = two_switch_subnet();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(2))
            .unwrap();
        // Both switches bounce LID 2 back and forth over the trunk; the
        // packet never reaches h1 on sw1 port 2.
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(1));
        s.lft_mut(sw1)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(1));
        let err = s.trace_route(h0, Lid::from_raw(2), 16).unwrap_err();
        assert!(err.to_string().contains("exceeded"));
        let _ = (sw0, sw1);
    }

    #[test]
    fn trace_to_switch_lid_terminates_at_port0() {
        let (mut s, sw0, sw1, h0, _) = two_switch_subnet();
        s.assign_switch_lid(sw1, Lid::from_raw(7)).unwrap();
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(7), PortNum::new(1));
        s.lft_mut(sw1)
            .unwrap()
            .set(Lid::from_raw(7), PortNum::MANAGEMENT);
        let path = s.trace_route(h0, Lid::from_raw(7), 16).unwrap();
        assert_eq!(path, vec![h0, sw0, sw1]);
    }

    #[test]
    fn disconnected_subnet_detected() {
        let mut s = Subnet::new();
        s.add_switch("a", 2);
        s.add_switch("b", 2);
        assert!(s.validate(true).is_err());
        assert!(s.validate(false).is_ok());
    }

    #[test]
    fn leaf_switches_have_endpoints() {
        let (s, sw0, sw1, _, _) = two_switch_subnet();
        let mut leaves = s.leaf_switches();
        leaves.sort();
        assert_eq!(leaves, vec![sw0, sw1]);
    }

    #[test]
    fn vswitch_excluded_from_physical() {
        let mut s = Subnet::new();
        let sw = s.add_switch("sw", 4);
        let vsw = s.add_vswitch("hyp0-vsw", 4);
        s.connect_free(sw, vsw).unwrap();
        assert_eq!(s.num_physical_switches(), 1);
        assert_eq!(s.switches().count(), 2);
        let _ = sw;
    }

    #[test]
    fn link_down_up_roundtrip() {
        let (mut s, sw0, sw1, _, _) = two_switch_subnet();
        assert!(s.is_link_up(sw0, PortNum::new(1)));
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        // Both ends see the link as down; cabling is remembered.
        assert!(!s.is_link_up(sw0, PortNum::new(1)));
        assert!(!s.is_link_up(sw1, PortNum::new(1)));
        assert_eq!(s.neighbor(sw0, PortNum::new(1)), None);
        assert_eq!(
            s.cabled_neighbor(sw0, PortNum::new(1)),
            Some(Endpoint::new(sw1, PortNum::new(1)))
        );
        assert_eq!(s.num_links(), 2);
        s.validate_degraded().unwrap();
        // Full validation fails: the fabric is split.
        assert!(s.validate(true).is_err());
        s.set_link_up(sw0, PortNum::new(1)).unwrap();
        assert!(s.is_link_up(sw1, PortNum::new(1)));
        assert_eq!(s.num_links(), 3);
        s.validate(true).unwrap();
    }

    #[test]
    fn link_down_on_uncabled_port_refused() {
        let (mut s, sw0, _, _, _) = two_switch_subnet();
        assert!(s.set_link_down(sw0, PortNum::new(4)).is_err());
        assert!(s.set_link_up(sw0, PortNum::new(4)).is_err());
    }

    #[test]
    fn trace_route_fails_over_down_link() {
        let (mut s, sw0, sw1, h0, h1) = two_switch_subnet();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(2))
            .unwrap();
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(1));
        s.lft_mut(sw1)
            .unwrap()
            .set(Lid::from_raw(2), PortNum::new(2));
        s.trace_route(h0, Lid::from_raw(2), 16).unwrap();
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        let err = s.trace_route(h0, Lid::from_raw(2), 16).unwrap_err();
        assert!(err.to_string().contains("uncabled"), "{err}");
    }

    #[test]
    fn remove_node_kills_links_and_iterators() {
        let (mut s, sw0, sw1, h0, h1) = two_switch_subnet();
        assert_eq!(s.num_physical_switches(), 2);
        let downed = s.remove_node(sw1).unwrap();
        assert_eq!(downed, 2); // trunk + h1 uplink
        assert!(!s.is_alive(sw1));
        assert!(s.is_alive(sw0));
        assert_eq!(s.num_physical_switches(), 1);
        // h1 is alive but unreachable; h0 still is reachable.
        assert_eq!(s.hcas().count(), 2);
        assert_eq!(s.num_links(), 1);
        s.validate_degraded().unwrap();
        let _ = (h0, h1);
    }

    #[test]
    fn degraded_validation_rejects_lid_on_dead_node() {
        let (mut s, _, sw1, _, _) = two_switch_subnet();
        s.assign_switch_lid(sw1, Lid::from_raw(9)).unwrap();
        s.remove_node(sw1).unwrap();
        let err = s.validate_degraded().unwrap_err();
        assert!(err.to_string().contains("dead node"), "{err}");
        // Pruning the LID (what the SM's heavy sweep does) fixes it.
        s.clear_lid(Lid::from_raw(9)).unwrap();
        s.validate_degraded().unwrap();
    }

    #[test]
    fn degraded_validation_rejects_unreachable_lid_owner() {
        let (mut s, sw0, sw1, _, h1) = two_switch_subnet();
        s.assign_port_lid(h1, PortNum::new(1), Lid::from_raw(2))
            .unwrap();
        // A fabric *split* is legal degraded state: h1 keeps its LID in
        // the {sw1, h1} component, to be healed in place.
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        s.validate_degraded().unwrap();
        // An endpoint with every cable down is not: no component can ever
        // serve that LID, so the SM must prune it.
        s.set_link_down(sw1, PortNum::new(2)).unwrap();
        let err = s.validate_degraded().unwrap_err();
        assert!(err.to_string().contains("unreachable"), "{err}");
    }

    #[test]
    fn disconnect_clears_down_flag() {
        let (mut s, sw0, sw1, _, _) = two_switch_subnet();
        s.set_link_down(sw0, PortNum::new(1)).unwrap();
        s.disconnect(sw0, PortNum::new(1)).unwrap();
        s.connect(sw0, PortNum::new(1), sw1, PortNum::new(1))
            .unwrap();
        assert!(s.is_link_up(sw0, PortNum::new(1)));
        s.validate(true).unwrap();
    }

    #[test]
    fn clone_snapshot_roundtrip() {
        let (mut s, sw0, _, h0, _) = two_switch_subnet();
        s.assign_switch_lid(sw0, Lid::from_raw(3)).unwrap();
        s.assign_port_lid(h0, PortNum::new(1), Lid::from_raw(4))
            .unwrap();
        s.lft_mut(sw0)
            .unwrap()
            .set(Lid::from_raw(4), PortNum::new(2));
        let back = s.clone();
        back.validate(true).unwrap();
        assert_eq!(back.num_lids(), 2);
        assert_eq!(
            back.lft(sw0).unwrap().get(Lid::from_raw(4)),
            Some(PortNum::new(2))
        );
    }
}
