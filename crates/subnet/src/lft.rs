//! Linear Forwarding Tables.
//!
//! Every switch routes unicast packets by indexing its LFT with the
//! destination LID. The management plane reads and writes LFTs in blocks of
//! [`LFT_BLOCK_SIZE`] (64) entries; one `SubnSet(LinearForwardingTable)` SMP
//! carries exactly one block. Consequently the *number of dirty blocks*, not
//! the number of changed entries, determines reconfiguration traffic — the
//! observation at the heart of the paper's one-or-two-SMPs-per-switch
//! live-migration reconfiguration.

use ib_types::{Lid, PortNum, LFT_BLOCK_SIZE};

/// A switch's Linear Forwarding Table.
///
/// Stored densely, indexed by raw LID, in multiples of the 64-entry block
/// size. Entries are `None` when the LID is unreachable from this switch
/// (the wire encoding would be port 255 or an uninitialized entry; we keep
/// "drop deliberately" — [`PortNum::DROP`] — distinct from "never set").
#[derive(Clone, Debug, Default)]
pub struct Lft {
    entries: Vec<Option<PortNum>>,
}

/// Equality is semantic: blocks that exist on one side but are entirely
/// unset are equal to absent blocks (growing a table without setting
/// anything does not change it).
impl PartialEq for Lft {
    fn eq(&self, other: &Self) -> bool {
        let common = self.entries.len().min(other.entries.len());
        self.entries[..common] == other.entries[..common]
            && self.entries[common..].iter().all(Option::is_none)
            && other.entries[common..].iter().all(Option::is_none)
    }
}

impl Eq for Lft {}

impl Lft {
    /// An empty LFT with no blocks allocated.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An LFT pre-sized to cover `topmost` (rounded up to a block boundary).
    #[must_use]
    pub fn with_topmost(topmost: Lid) -> Self {
        let blocks = topmost.lft_block() + 1;
        Self {
            entries: vec![None; blocks * LFT_BLOCK_SIZE],
        }
    }

    /// Adopts a dense entry vector indexed by raw LID, rounding the
    /// allocation up to a block boundary.
    ///
    /// This is the conversion step for routing-engine staging: engines fill
    /// a flat `Vec<Option<PortNum>>` per switch in their hot loops and turn
    /// it into a block-structured table once at the end, instead of paying
    /// [`Lft::set`]'s block bookkeeping per entry. Index 0 must be `None`
    /// (LID 0 is unconstructible).
    #[must_use]
    pub fn from_dense(mut entries: Vec<Option<PortNum>>) -> Self {
        debug_assert!(entries.first().is_none_or(Option::is_none));
        let blocks = entries.len().div_ceil(LFT_BLOCK_SIZE);
        entries.resize(blocks * LFT_BLOCK_SIZE, None);
        Self { entries }
    }

    /// Number of 64-entry blocks currently allocated.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        self.entries.len() / LFT_BLOCK_SIZE
    }

    /// The forwarding port for `lid`, or `None` if unreachable/unset.
    #[must_use]
    pub fn get(&self, lid: Lid) -> Option<PortNum> {
        self.entries.get(lid.raw() as usize).copied().flatten()
    }

    /// Sets the forwarding port for `lid`, growing the table to the
    /// containing block if needed.
    pub fn set(&mut self, lid: Lid, port: PortNum) {
        self.ensure_block(lid.lft_block());
        self.entries[lid.raw() as usize] = Some(port);
    }

    /// Clears the entry for `lid` (marks it unreachable).
    pub fn clear(&mut self, lid: Lid) {
        if let Some(e) = self.entries.get_mut(lid.raw() as usize) {
            *e = None;
        }
    }

    /// Swaps the entries of two LIDs in place.
    ///
    /// This is the primitive of the prepopulated-LID reconfiguration
    /// (§V-C1): exchanging the row of the migrating VM's LID with the row of
    /// the destination VF's LID preserves the permutation — and therefore the
    /// balancing — of the initial routing.
    pub fn swap(&mut self, a: Lid, b: Lid) {
        self.ensure_block(a.lft_block().max(b.lft_block()));
        self.entries.swap(a.raw() as usize, b.raw() as usize);
    }

    /// Copies the entry of `src` into `dst`.
    ///
    /// This is the primitive of the dynamic-LID-assignment reconfiguration
    /// (§V-C2): a VM's LID adopts the forwarding port of the destination
    /// hypervisor's PF LID, because every VF shares the PF's uplink.
    pub fn copy(&mut self, src: Lid, dst: Lid) {
        self.ensure_block(src.lft_block().max(dst.lft_block()));
        self.entries[dst.raw() as usize] = self.entries[src.raw() as usize];
    }

    /// Read-only view of one 64-entry block.
    ///
    /// Returns `None` if the block is beyond the allocated range.
    #[must_use]
    pub fn block(&self, block: usize) -> Option<&[Option<PortNum>]> {
        let start = block * LFT_BLOCK_SIZE;
        let end = start + LFT_BLOCK_SIZE;
        self.entries.get(start..end)
    }

    /// Overwrites one 64-entry block (the receive side of a
    /// `SubnSet(LinearForwardingTable)` SMP).
    pub fn write_block(&mut self, block: usize, data: &[Option<PortNum>; LFT_BLOCK_SIZE]) {
        self.ensure_block(block);
        let start = block * LFT_BLOCK_SIZE;
        self.entries[start..start + LFT_BLOCK_SIZE].copy_from_slice(data);
    }

    /// Block indices whose contents differ between `self` and `other`.
    ///
    /// The subnet manager uses this to send only dirty blocks when
    /// distributing a recomputed LFT. Length differences count: blocks
    /// present on one side and absent on the other are dirty unless the
    /// present side is entirely unset.
    #[must_use]
    pub fn dirty_blocks(&self, other: &Lft) -> Vec<usize> {
        let max_blocks = self.num_blocks().max(other.num_blocks());
        let empty = [None; LFT_BLOCK_SIZE];
        let mut dirty = Vec::new();
        for b in 0..max_blocks {
            let lhs = self.block(b).unwrap_or(&empty);
            let rhs = other.block(b).unwrap_or(&empty);
            if lhs != rhs {
                dirty.push(b);
            }
        }
        dirty
    }

    /// Number of entries that are set.
    #[must_use]
    pub fn populated(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Iterator over `(lid, port)` pairs for all set entries.
    pub fn iter(&self) -> impl Iterator<Item = (Lid, PortNum)> + '_ {
        self.entries.iter().enumerate().filter_map(|(raw, e)| {
            let port = (*e)?;
            // Index 0 can never be set (LID 0 is unconstructible).
            Some((Lid::from_raw(raw as u16), port))
        })
    }

    /// A copy of this LFT padded to cover LIDs `1..=topmost`: unset entries
    /// in that range become [`PortNum::DROP`].
    ///
    /// OpenSM initializes every LFT entry up to the topmost assigned LID
    /// (unreachable ones to 255) and pushes *all* covered blocks on a virgin
    /// fabric — which is why a full distribution costs `n · m` SMPs even
    /// though most entries never change from "drop" (§VI-A, Table I).
    #[must_use]
    pub fn padded(&self, topmost: Lid) -> Lft {
        let mut out = self.clone();
        out.ensure_block(topmost.lft_block());
        for raw in 1..=topmost.raw() as usize {
            if out.entries[raw].is_none() {
                out.entries[raw] = Some(PortNum::DROP);
            }
        }
        out
    }

    /// A borrowed, lazily padded view of this LFT (see [`Lft::padded`]):
    /// entries `1..=topmost` read as [`PortNum::DROP`] when unset, without
    /// materializing a padded clone. With `topmost == None` the view reads
    /// exactly like the underlying table.
    ///
    /// This is the allocation-free form the SM's sweep uses: one padded
    /// clone per switch per sweep is the dominant cost of diffing a target
    /// LFT at fat-tree scale.
    #[must_use]
    pub fn padded_view(&self, topmost: Option<Lid>) -> PaddedLftView<'_> {
        PaddedLftView { lft: self, topmost }
    }

    fn ensure_block(&mut self, block: usize) {
        let needed = (block + 1) * LFT_BLOCK_SIZE;
        if self.entries.len() < needed {
            self.entries.resize(needed, None);
        }
    }
}

/// A read-only view of an [`Lft`] padded to a topmost LID, equivalent to
/// [`Lft::padded`] block for block but borrowing instead of cloning.
#[derive(Clone, Copy, Debug)]
pub struct PaddedLftView<'a> {
    lft: &'a Lft,
    topmost: Option<Lid>,
}

impl PaddedLftView<'_> {
    /// Number of 64-entry blocks the view covers: every allocated block of
    /// the underlying table, extended to cover `topmost`.
    #[must_use]
    pub fn num_blocks(&self) -> usize {
        let from_top = self.topmost.map_or(0, |t| t.lft_block() + 1);
        self.lft.num_blocks().max(from_top)
    }

    /// Materializes one 64-entry block into `out`, applying the padding
    /// rule: unset entries in `1..=topmost` become [`PortNum::DROP`],
    /// entries beyond stay unset.
    pub fn copy_block_into(&self, block: usize, out: &mut [Option<PortNum>; LFT_BLOCK_SIZE]) {
        match self.lft.block(block) {
            Some(src) => out.copy_from_slice(src),
            None => out.fill(None),
        }
        if let Some(top) = self.topmost {
            let start = block * LFT_BLOCK_SIZE;
            let top = top.raw() as usize;
            for (i, entry) in out.iter_mut().enumerate() {
                let raw = start + i;
                if raw >= 1 && raw <= top && entry.is_none() {
                    *entry = Some(PortNum::DROP);
                }
            }
        }
    }

    /// Block indices where `installed` differs from this (padded) view —
    /// identical to `installed.dirty_blocks(&lft.padded(topmost))` without
    /// building the padded copy.
    #[must_use]
    pub fn dirty_blocks_against(&self, installed: &Lft) -> Vec<usize> {
        let max_blocks = installed.num_blocks().max(self.num_blocks());
        let empty = [None; LFT_BLOCK_SIZE];
        let mut buf = [None; LFT_BLOCK_SIZE];
        let mut dirty = Vec::new();
        for b in 0..max_blocks {
            self.copy_block_into(b, &mut buf);
            if installed.block(b).unwrap_or(&empty) != buf.as_slice() {
                dirty.push(b);
            }
        }
        dirty
    }
}

/// A recorded difference between two LFT states of one switch, expressed in
/// blocks — exactly the payloads the SM must push to materialize the change.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LftDelta {
    /// Dirty block indices in ascending order.
    pub blocks: Vec<usize>,
}

impl LftDelta {
    /// Computes the delta needed to turn `from` into `to`.
    #[must_use]
    pub fn between(from: &Lft, to: &Lft) -> Self {
        Self {
            blocks: from.dirty_blocks(to),
        }
    }

    /// Number of SMPs required to apply this delta to the switch.
    #[must_use]
    pub fn smp_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the delta is empty (no SMP needed).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

/// Minimum number of LFT blocks a switch must hold to cover `topmost`.
///
/// Table I's "Min LFT Blocks/Switch" column: `ceil((topmost_lid + 1) / 64)`
/// — e.g. 360 consumed LIDs (topmost 360) need 6 blocks, 13284 need 208.
#[must_use]
pub fn min_blocks_for(topmost: Lid) -> usize {
    topmost.lft_block() + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lid(raw: u16) -> Lid {
        Lid::from_raw(raw)
    }

    fn port(raw: u8) -> PortNum {
        PortNum::new(raw)
    }

    #[test]
    fn set_get_roundtrip() {
        let mut lft = Lft::new();
        lft.set(lid(5), port(3));
        assert_eq!(lft.get(lid(5)), Some(port(3)));
        assert_eq!(lft.get(lid(6)), None);
        assert_eq!(lft.num_blocks(), 1);
    }

    #[test]
    fn growth_is_block_granular() {
        let mut lft = Lft::new();
        lft.set(lid(64), port(1));
        assert_eq!(lft.num_blocks(), 2);
        lft.set(lid(200), port(2));
        assert_eq!(lft.num_blocks(), 4); // LID 200 is in block 3.
    }

    #[test]
    fn swap_matches_fig5() {
        // Fig. 5: before migration LID 2 -> port 2 and LID 12 -> port 4;
        // after, LID 2 -> port 4 and LID 12 -> port 2.
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        lft.set(lid(12), port(4));
        lft.swap(lid(2), lid(12));
        assert_eq!(lft.get(lid(2)), Some(port(4)));
        assert_eq!(lft.get(lid(12)), Some(port(2)));
    }

    #[test]
    fn swap_is_involution() {
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        lft.set(lid(70), port(4));
        let before = lft.clone();
        lft.swap(lid(2), lid(70));
        lft.swap(lid(2), lid(70));
        assert_eq!(lft, before);
    }

    #[test]
    fn copy_duplicates_pf_path() {
        let mut lft = Lft::new();
        lft.set(lid(3), port(7)); // PF of destination hypervisor.
        lft.copy(lid(3), lid(9)); // VM LID inherits the PF port.
        assert_eq!(lft.get(lid(9)), Some(port(7)));
        assert_eq!(lft.get(lid(3)), Some(port(7)));
    }

    #[test]
    fn dirty_blocks_same_block_swap_is_one() {
        // LIDs 2 and 12 share block 0: a swap dirties exactly one block.
        let mut a = Lft::new();
        a.set(lid(2), port(2));
        a.set(lid(12), port(4));
        let mut b = a.clone();
        b.swap(lid(2), lid(12));
        assert_eq!(a.dirty_blocks(&b), vec![0]);
    }

    #[test]
    fn dirty_blocks_cross_block_swap_is_two() {
        // §V-C1: "If the LID of VF3 ... was 64 or greater, then two SMPs
        // would need to be sent as two LFT blocks would have to be updated."
        let mut a = Lft::new();
        a.set(lid(2), port(2));
        a.set(lid(64), port(4));
        let mut b = a.clone();
        b.swap(lid(2), lid(64));
        assert_eq!(a.dirty_blocks(&b), vec![0, 1]);
    }

    #[test]
    fn dirty_blocks_no_change_is_empty() {
        let mut a = Lft::new();
        a.set(lid(2), port(2));
        // Swapping two LIDs that forward through the same port is a no-op.
        a.set(lid(6), port(2));
        let mut b = a.clone();
        b.swap(lid(2), lid(6));
        assert!(a.dirty_blocks(&b).is_empty());
        assert_eq!(LftDelta::between(&a, &b).smp_count(), 0);
    }

    #[test]
    fn dirty_blocks_detects_length_difference() {
        let mut a = Lft::new();
        a.set(lid(2), port(2));
        let mut b = a.clone();
        b.set(lid(100), port(1));
        assert_eq!(a.dirty_blocks(&b), vec![1]);
    }

    #[test]
    fn write_block_applies_smp_payload() {
        let mut src = Lft::new();
        for raw in 1..64u16 {
            src.set(lid(raw), port((raw % 36) as u8 + 1));
        }
        let mut dst = Lft::new();
        let mut payload = [None; LFT_BLOCK_SIZE];
        payload.copy_from_slice(src.block(0).unwrap());
        dst.write_block(0, &payload);
        assert_eq!(dst, src);
    }

    #[test]
    fn min_blocks_matches_table1() {
        // Table I: 360 LIDs -> 6 blocks, 702 -> 11, 6804 -> 107, 13284 -> 208
        // (consumed LIDs are 1..=topmost in the paper's regular networks).
        assert_eq!(min_blocks_for(lid(360)), 6);
        assert_eq!(min_blocks_for(lid(702)), 11);
        assert_eq!(min_blocks_for(lid(6804)), 107);
        assert_eq!(min_blocks_for(lid(13284)), 208);
        // §VII-C: topmost unicast LID forces the full 768-block table.
        assert_eq!(min_blocks_for(lid(0xBFFF)), 768);
    }

    #[test]
    fn from_dense_matches_incremental_set() {
        // A dense staging vector converts to exactly the table that
        // per-entry `set` calls would have built.
        let mut dense = vec![None; 131];
        dense[2] = Some(port(2));
        dense[70] = Some(port(4));
        dense[130] = Some(port(9));
        let from_dense = Lft::from_dense(dense);
        let mut incremental = Lft::new();
        incremental.set(lid(2), port(2));
        incremental.set(lid(70), port(4));
        incremental.set(lid(130), port(9));
        assert_eq!(from_dense, incremental);
        // Allocation is block-rounded: LID 130 lives in block 2.
        assert_eq!(from_dense.num_blocks(), 3);
        assert_eq!(Lft::from_dense(Vec::new()), Lft::new());
    }

    #[test]
    fn iter_yields_set_entries() {
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        lft.set(lid(65), port(4));
        let got: Vec<(u16, u8)> = lft.iter().map(|(l, p)| (l.raw(), p.raw())).collect();
        assert_eq!(got, vec![(2, 2), (65, 4)]);
    }

    #[test]
    fn clear_marks_unreachable() {
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        lft.clear(lid(2));
        assert_eq!(lft.get(lid(2)), None);
        assert_eq!(lft.populated(), 0);
    }

    #[test]
    fn padded_covers_every_block_up_to_topmost() {
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        let padded = lft.padded(lid(130));
        assert_eq!(padded.num_blocks(), 3);
        assert_eq!(padded.get(lid(2)), Some(port(2)));
        assert_eq!(padded.get(lid(130)), Some(PortNum::DROP));
        assert_eq!(padded.get(lid(131)), None, "beyond topmost stays unset");
        // Against an empty LFT, every covered block is dirty: the n*m term.
        assert_eq!(Lft::new().dirty_blocks(&padded), vec![0, 1, 2]);
    }

    #[test]
    fn padded_view_matches_padded_clone() {
        let mut lft = Lft::new();
        lft.set(lid(2), port(2));
        lft.set(lid(70), port(4));
        for topmost in [None, Some(lid(2)), Some(lid(130)), Some(lid(70))] {
            let view = lft.padded_view(topmost);
            let clone = match topmost {
                Some(t) => lft.padded(t),
                None => lft.clone(),
            };
            assert_eq!(view.num_blocks(), clone.num_blocks(), "{topmost:?}");
            let mut buf = [None; LFT_BLOCK_SIZE];
            for b in 0..view.num_blocks() + 1 {
                view.copy_block_into(b, &mut buf);
                let expect = clone.block(b).unwrap_or(&[None; LFT_BLOCK_SIZE]);
                assert_eq!(&buf[..], expect, "block {b} under {topmost:?}");
            }
            // Dirty sets against assorted installed tables agree too.
            for installed in [Lft::new(), lft.clone(), clone.clone()] {
                assert_eq!(
                    view.dirty_blocks_against(&installed),
                    installed.dirty_blocks(&clone),
                    "{topmost:?}"
                );
            }
        }
    }

    #[test]
    fn padded_view_sees_blocks_beyond_topmost() {
        // The installed table is longer than the padded target: the extra
        // installed blocks must still show up dirty.
        let target = Lft::new();
        let mut installed = Lft::new();
        installed.set(lid(200), port(3));
        let view = target.padded_view(Some(lid(64)));
        assert_eq!(
            view.dirty_blocks_against(&installed),
            installed.dirty_blocks(&target.padded(lid(64)))
        );
    }

    #[test]
    fn drop_port_is_representable() {
        // §VI-C's partially-static variant forwards the migrating LID
        // through port 255 so traffic is dropped, distinct from unset.
        let mut lft = Lft::new();
        lft.set(lid(2), PortNum::DROP);
        assert_eq!(lft.get(lid(2)), Some(PortNum::DROP));
        assert_eq!(lft.populated(), 1);
    }
}
