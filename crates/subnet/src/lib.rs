//! # ib-subnet
//!
//! An in-memory model of an InfiniBand subnet: switches with block-structured
//! Linear Forwarding Tables (LFTs), host channel adapters (HCAs), the links
//! between them, and builders for the topologies used in the paper's
//! evaluation (regular fat trees built from 36-port switches) plus tori,
//! meshes, and random irregular networks for the topology-agnostic claims.
//!
//! The subnet is the *ground truth* that every other crate operates on:
//! routing engines read its graph and fill in LFTs, the subnet manager
//! discovers it and distributes LFT blocks, and the vSwitch layer mutates it
//! when VMs are created, destroyed, and live-migrated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dot;
pub mod lft;
pub mod node;
pub mod subnet;
pub mod topology;

pub use lft::{Lft, LftDelta, PaddedLftView};
pub use node::{Endpoint, Node, NodeId, NodeKind, PortState};
pub use subnet::Subnet;
