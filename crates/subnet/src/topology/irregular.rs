//! Seeded random irregular topologies.
//!
//! Irregular fabrics are where "topology agnostic" earns its name: the
//! builder produces a random connected switch graph (random spanning tree
//! plus extra chords) with hosts spread round-robin, deterministically from a
//! seed so tests and benches are reproducible.

use ib_types::PortNum;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::subnet::Subnet;

use super::BuiltTopology;

/// Parameters for a random irregular topology.
#[derive(Clone, Copy, Debug)]
pub struct IrregularSpec {
    /// Number of switches.
    pub num_switches: usize,
    /// Number of hosts, spread round-robin across switches.
    pub num_hosts: usize,
    /// Extra switch-switch chords beyond the spanning tree.
    pub extra_links: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for IrregularSpec {
    fn default() -> Self {
        Self {
            num_switches: 8,
            num_hosts: 16,
            extra_links: 6,
            seed: 0xD1CE,
        }
    }
}

/// Builds a random connected irregular network.
#[must_use]
pub fn irregular(spec: IrregularSpec) -> BuiltTopology {
    assert!(spec.num_switches >= 1);
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut subnet = Subnet::new();

    // Generous radix: tree degree + chords + hosts can all land on one
    // switch in the worst case.
    let radix =
        (spec.num_switches + spec.extra_links * 2 + spec.num_hosts / spec.num_switches.max(1) + 4)
            .min(250) as u8;

    let switches: Vec<_> = (0..spec.num_switches)
        .map(|i| subnet.add_switch(format!("sw-{i}"), radix))
        .collect();

    // Random spanning tree: attach each new switch to a random earlier one.
    for i in 1..spec.num_switches {
        let parent = rng.gen_range(0..i);
        subnet
            .connect_free(switches[i], switches[parent])
            .expect("irregular tree wiring");
    }

    // Extra chords between distinct random pairs (parallel cables allowed —
    // real IB fabrics have them).
    let mut added = 0;
    let mut attempts = 0;
    while added < spec.extra_links && attempts < spec.extra_links * 20 {
        attempts += 1;
        if spec.num_switches < 2 {
            break;
        }
        let a = rng.gen_range(0..spec.num_switches);
        let b = rng.gen_range(0..spec.num_switches);
        if a == b {
            continue;
        }
        if subnet.connect_free(switches[a], switches[b]).is_ok() {
            added += 1;
        }
    }

    let mut hosts = Vec::with_capacity(spec.num_hosts);
    for h in 0..spec.num_hosts {
        let sw = switches[h % spec.num_switches];
        let host = subnet.add_hca(format!("host-{h}"));
        let hp = subnet.first_free_port(sw).expect("irregular host port");
        subnet
            .connect(sw, hp, host, PortNum::new(1))
            .expect("irregular host wiring");
        hosts.push(host);
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("irregular-s{}-h{}", spec.num_switches, spec.num_hosts),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = irregular(IrregularSpec::default());
        let b = irregular(IrregularSpec::default());
        assert_eq!(a.subnet.num_links(), b.subnet.num_links());
        assert_eq!(a.num_hosts(), b.num_hosts());
    }

    #[test]
    fn different_seed_differs() {
        let a = irregular(IrregularSpec::default());
        let b = irregular(IrregularSpec {
            seed: 42,
            ..IrregularSpec::default()
        });
        // Same counts, but the wiring should differ for (almost) any seed
        // pair; compare the full link sets via the Debug rendering.
        let ja = format!("{:?}", a.subnet);
        let jb = format!("{:?}", b.subnet);
        assert_ne!(ja, jb);
    }

    #[test]
    fn always_connected() {
        for seed in 0..20 {
            let t = irregular(IrregularSpec {
                num_switches: 12,
                num_hosts: 24,
                extra_links: 8,
                seed,
            });
            t.subnet.validate(true).unwrap();
        }
    }

    #[test]
    fn single_switch_degenerate() {
        let t = irregular(IrregularSpec {
            num_switches: 1,
            num_hosts: 4,
            extra_links: 3,
            seed: 1,
        });
        t.subnet.validate(true).unwrap();
        assert_eq!(t.subnet.num_links(), 4);
    }
}
