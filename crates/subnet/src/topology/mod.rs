//! Topology builders.
//!
//! Builders produce un-managed subnets: cabling only, no LIDs and no LFTs —
//! exactly what a subnet manager finds when it first sweeps a fabric. The
//! four presets in [`fattree`] reproduce the evaluation topologies of the
//! paper (Fig. 7 / Table I); [`torus`] and [`irregular`] exist to exercise
//! the *topology-agnostic* claims of the reconfiguration method.

pub mod basic;
pub mod dragonfly;
pub mod fattree;
pub mod hypercube;
pub mod irregular;
pub mod torus;

use crate::node::NodeId;
use crate::subnet::Subnet;

/// A constructed topology: the subnet plus role annotations that builders
/// know but the raw graph does not express.
#[derive(Clone, Debug)]
pub struct BuiltTopology {
    /// The cabled subnet.
    pub subnet: Subnet,
    /// Host (HCA) nodes, in builder order.
    pub hosts: Vec<NodeId>,
    /// Switches grouped by level; level 0 is the edge/leaf level.
    pub switch_levels: Vec<Vec<NodeId>>,
    /// Human-readable topology name (`"fat-tree-2L-324"`, ...).
    pub name: String,
}

impl BuiltTopology {
    /// All switches across levels.
    #[must_use]
    pub fn all_switches(&self) -> Vec<NodeId> {
        self.switch_levels.iter().flatten().copied().collect()
    }

    /// Leaf (edge) switches.
    #[must_use]
    pub fn leaves(&self) -> &[NodeId] {
        self.switch_levels.first().map_or(&[], Vec::as_slice)
    }

    /// Total switch count.
    #[must_use]
    pub fn num_switches(&self) -> usize {
        self.switch_levels.iter().map(Vec::len).sum()
    }

    /// Total host count.
    #[must_use]
    pub fn num_hosts(&self) -> usize {
        self.hosts.len()
    }
}
