//! Torus and mesh topologies.
//!
//! The reconfiguration method is topology agnostic; tori and meshes give the
//! test suite structured non-tree fabrics (with cycles, so Up*/Down*, LASH
//! and DFSSSP have real work to do).

use ib_types::PortNum;

use crate::subnet::Subnet;

use super::BuiltTopology;

/// Builds a 2-D torus (or mesh when `wrap` is false) of switches with
/// `hosts_per_switch` hosts on each switch.
///
/// Switch `(r, c)` links +row, -row, +col, -col neighbors on ports 1–4 and
/// hosts on ports 5..`.
#[must_use]
pub fn torus_2d(rows: usize, cols: usize, hosts_per_switch: usize, wrap: bool) -> BuiltTopology {
    assert!(rows >= 2 && cols >= 2, "torus needs at least 2x2");
    let mut subnet = Subnet::new();
    let radix = (4 + hosts_per_switch) as u8;
    let sw_at = |r: usize, c: usize| r * cols + c;

    let switches: Vec<_> = (0..rows * cols)
        .map(|i| subnet.add_switch(format!("sw-{}-{}", i / cols, i % cols), radix))
        .collect();

    // Horizontal rings: port 1 = +col side, port 2 = -col side.
    for r in 0..rows {
        for c in 0..cols {
            let next_c = (c + 1) % cols;
            if next_c != 0 || wrap {
                // Avoid double-cabling 2-switch rings: the wrap link of a
                // 2-wide ring is the same pair already cabled.
                if cols == 2 && next_c == 0 {
                    continue;
                }
                subnet
                    .connect(
                        switches[sw_at(r, c)],
                        PortNum::new(1),
                        switches[sw_at(r, next_c)],
                        PortNum::new(2),
                    )
                    .expect("torus row wiring");
            }
        }
    }
    // Vertical rings: port 3 = +row side, port 4 = -row side.
    for c in 0..cols {
        for r in 0..rows {
            let next_r = (r + 1) % rows;
            if next_r != 0 || wrap {
                if rows == 2 && next_r == 0 {
                    continue;
                }
                subnet
                    .connect(
                        switches[sw_at(r, c)],
                        PortNum::new(3),
                        switches[sw_at(next_r, c)],
                        PortNum::new(4),
                    )
                    .expect("torus column wiring");
            }
        }
    }

    let mut hosts = Vec::with_capacity(rows * cols * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = subnet.add_hca(format!("host-{}", i * hosts_per_switch + h));
            subnet
                .connect(sw, PortNum::new(5 + h as u8), host, PortNum::new(1))
                .expect("torus host wiring");
            hosts.push(host);
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("{}-{rows}x{cols}", if wrap { "torus" } else { "mesh" }),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// A 2-D mesh (torus without wraparound links).
#[must_use]
pub fn mesh_2d(rows: usize, cols: usize, hosts_per_switch: usize) -> BuiltTopology {
    torus_2d(rows, cols, hosts_per_switch, false)
}

/// Builds a 3-D torus of `x * y * z` switches with `hosts_per_switch`
/// hosts each. Dimension rings use ports 1-2 (x), 3-4 (y), 5-6 (z); hosts
/// start at port 7. Rings of length 2 get a single link.
#[must_use]
pub fn torus_3d(x: usize, y: usize, z: usize, hosts_per_switch: usize) -> BuiltTopology {
    assert!(x >= 2 && y >= 2 && z >= 2, "3-D torus needs 2x2x2 minimum");
    let mut subnet = Subnet::new();
    let radix = (6 + hosts_per_switch) as u8;
    let at = |i: usize, j: usize, k: usize| (i * y + j) * z + k;

    let switches: Vec<_> = (0..x * y * z)
        .map(|idx| {
            let (i, jk) = (idx / (y * z), idx % (y * z));
            subnet.add_switch(format!("sw-{i}-{}-{}", jk / z, jk % z), radix)
        })
        .collect();

    // One ring per dimension per line; (plus_port, minus_port) per dim.
    let dims: [(usize, u8, u8); 3] = [(0, 1, 2), (1, 3, 4), (2, 5, 6)];
    for (dim, plus, minus) in dims {
        let (dx, dy, dz) = match dim {
            0 => (1, 0, 0),
            1 => (0, 1, 0),
            _ => (0, 0, 1),
        };
        let len = [x, y, z][dim];
        for i in 0..x {
            for j in 0..y {
                for k in 0..z {
                    let pos = [i, j, k][dim];
                    let next = (pos + 1) % len;
                    // Only the "owner" of the edge cables it; skip the
                    // duplicate wrap on 2-long rings.
                    if next == 0 && len == 2 {
                        continue;
                    }
                    let (ni, nj, nk) = match dim {
                        0 => ((i + dx) % x, j, k),
                        1 => (i, (j + dy) % y, k),
                        _ => (i, j, (k + dz) % z),
                    };
                    subnet
                        .connect(
                            switches[at(i, j, k)],
                            PortNum::new(plus),
                            switches[at(ni, nj, nk)],
                            PortNum::new(minus),
                        )
                        .expect("3-D torus wiring");
                }
            }
        }
    }

    let mut hosts = Vec::with_capacity(x * y * z * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = subnet.add_hca(format!("host-{}", i * hosts_per_switch + h));
            subnet
                .connect(sw, PortNum::new(7 + h as u8), host, PortNum::new(1))
                .expect("3-D torus host wiring");
            hosts.push(host);
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("torus3d-{x}x{y}x{z}"),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_3x3_link_count() {
        let t = torus_2d(3, 3, 1, true);
        t.subnet.validate(true).unwrap();
        // 9 row links + 9 col links + 9 host links.
        assert_eq!(t.subnet.num_links(), 27);
        assert_eq!(t.num_hosts(), 9);
        assert_eq!(t.num_switches(), 9);
    }

    #[test]
    fn mesh_3x3_link_count() {
        let t = mesh_2d(3, 3, 1);
        t.subnet.validate(true).unwrap();
        // 6 row links + 6 col links + 9 host links.
        assert_eq!(t.subnet.num_links(), 21);
    }

    #[test]
    fn degenerate_2x2_has_no_duplicate_wrap() {
        let t = torus_2d(2, 2, 1, true);
        t.subnet.validate(true).unwrap();
        // 2 row + 2 col + 4 host links.
        assert_eq!(t.subnet.num_links(), 8);
    }

    #[test]
    fn torus_3d_shape() {
        let t = torus_3d(2, 2, 3, 1);
        t.subnet.validate(true).unwrap();
        assert_eq!(t.num_switches(), 12);
        assert_eq!(t.num_hosts(), 12);
        // Links: x rings (2-long, 1 link each): y*z=6; y rings: x*z=6;
        // z rings (3-long): x*y*3=12; hosts: 12.
        assert_eq!(t.subnet.num_links(), 6 + 6 + 12 + 12);
    }

    #[test]
    fn torus_3d_cube_shape() {
        let t = torus_3d(3, 3, 3, 0);
        t.subnet.validate(true).unwrap();
        assert_eq!(t.num_switches(), 27);
        // 3 dims x 9 lines x 3 links per ring.
        assert_eq!(t.subnet.num_links(), 81);
    }

    #[test]
    fn torus_has_cycles() {
        // A 3x3 torus has 18 switch-switch links but only 8 would fit a
        // tree of 9 switches: the surplus guarantees cycles for the
        // deadlock-analysis tests to chew on.
        let t = torus_2d(3, 3, 0, true);
        assert!(t.subnet.num_links() > t.num_switches() - 1);
    }
}
