//! Regular fat trees built from fixed-radix switches, including the four
//! evaluation topologies of the paper (Table I / Fig. 7), all based on
//! 36-port switches:
//!
//! | preset | levels | hosts | switches |
//! |---|---|---|---|
//! | [`paper_324`]   | 2 | 324   | 36   |
//! | [`paper_648`]   | 2 | 648   | 54   |
//! | [`paper_5832`]  | 3 | 5832  | 972  |
//! | [`paper_11664`] | 3 | 11664 | 1620 |

use ib_types::PortNum;

use crate::subnet::Subnet;

use super::BuiltTopology;

/// Builds a two-level fat tree.
///
/// Every leaf switch carries `hosts_per_leaf` hosts on its down ports and
/// one uplink to *each* of the `num_spines` spine switches, so leaf radix is
/// `hosts_per_leaf + num_spines` and spine radix is `num_leaves`.
///
/// `paper_324` is `two_level(18, 18, 18)` (spines half-populated);
/// `paper_648` is `two_level(36, 18, 18)` (fully-provisioned 36-port tree).
#[must_use]
pub fn two_level(num_leaves: usize, hosts_per_leaf: usize, num_spines: usize) -> BuiltTopology {
    let mut subnet = Subnet::new();
    let leaf_radix = (hosts_per_leaf + num_spines) as u8;
    let spine_radix = num_leaves as u8;

    let leaves: Vec<_> = (0..num_leaves)
        .map(|i| subnet.add_switch(format!("leaf-{i}"), leaf_radix))
        .collect();
    let spines: Vec<_> = (0..num_spines)
        .map(|i| subnet.add_switch(format!("spine-{i}"), spine_radix))
        .collect();

    let mut hosts = Vec::with_capacity(num_leaves * hosts_per_leaf);
    for (li, &leaf) in leaves.iter().enumerate() {
        // Down ports 1..=hosts_per_leaf carry hosts.
        for h in 0..hosts_per_leaf {
            let host = subnet.add_hca(format!("host-{}", li * hosts_per_leaf + h));
            subnet
                .connect(leaf, PortNum::new(h as u8 + 1), host, PortNum::new(1))
                .expect("fat-tree host wiring");
            hosts.push(host);
        }
        // Up ports hosts_per_leaf+1.. carry one link per spine.
        for (si, &spine) in spines.iter().enumerate() {
            subnet
                .connect(
                    leaf,
                    PortNum::new((hosts_per_leaf + si) as u8 + 1),
                    spine,
                    PortNum::new(li as u8 + 1),
                )
                .expect("fat-tree spine wiring");
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![leaves, spines],
        name: format!("fat-tree-2L-{}", num_leaves * hosts_per_leaf),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// Builds a three-level fat tree organized in pods.
///
/// Each pod holds `leaves_per_pod` leaf switches (each with `hosts_per_leaf`
/// hosts and one uplink to every one of the pod's `mids_per_pod` middle
/// switches) and `mids_per_pod` middle switches, each with
/// `leaves_per_pod` core uplinks. Core switch `(m, j)` — for
/// `m < mids_per_pod`, `j < leaves_per_pod` — connects to middle switch `m`
/// of every pod, giving `mids_per_pod * leaves_per_pod` cores.
///
/// `paper_5832` is `three_level(18, 18, 18, 18)`;
/// `paper_11664` is `three_level(36, 18, 18, 18)`.
#[must_use]
pub fn three_level(
    num_pods: usize,
    leaves_per_pod: usize,
    hosts_per_leaf: usize,
    mids_per_pod: usize,
) -> BuiltTopology {
    let mut subnet = Subnet::new();
    let num_cores = mids_per_pod * leaves_per_pod;
    let leaf_radix = (hosts_per_leaf + mids_per_pod) as u8;
    let mid_radix = (leaves_per_pod + leaves_per_pod) as u8;
    let core_radix = num_pods as u8;

    let mut leaves = Vec::with_capacity(num_pods * leaves_per_pod);
    let mut mids = Vec::with_capacity(num_pods * mids_per_pod);
    for p in 0..num_pods {
        for l in 0..leaves_per_pod {
            leaves.push(subnet.add_switch(format!("leaf-{p}-{l}"), leaf_radix));
        }
        for m in 0..mids_per_pod {
            mids.push(subnet.add_switch(format!("mid-{p}-{m}"), mid_radix));
        }
    }
    let cores: Vec<_> = (0..num_cores)
        .map(|c| subnet.add_switch(format!("core-{c}"), core_radix))
        .collect();

    let mut hosts = Vec::with_capacity(num_pods * leaves_per_pod * hosts_per_leaf);
    for p in 0..num_pods {
        for l in 0..leaves_per_pod {
            let leaf = leaves[p * leaves_per_pod + l];
            for h in 0..hosts_per_leaf {
                let idx = (p * leaves_per_pod + l) * hosts_per_leaf + h;
                let host = subnet.add_hca(format!("host-{idx}"));
                subnet
                    .connect(leaf, PortNum::new(h as u8 + 1), host, PortNum::new(1))
                    .expect("fat-tree host wiring");
                hosts.push(host);
            }
            for m in 0..mids_per_pod {
                let mid = mids[p * mids_per_pod + m];
                subnet
                    .connect(
                        leaf,
                        PortNum::new((hosts_per_leaf + m) as u8 + 1),
                        mid,
                        PortNum::new(l as u8 + 1),
                    )
                    .expect("fat-tree mid wiring");
            }
        }
        for m in 0..mids_per_pod {
            let mid = mids[p * mids_per_pod + m];
            for j in 0..leaves_per_pod {
                let core = cores[m * leaves_per_pod + j];
                subnet
                    .connect(
                        mid,
                        PortNum::new((leaves_per_pod + j) as u8 + 1),
                        core,
                        PortNum::new(p as u8 + 1),
                    )
                    .expect("fat-tree core wiring");
            }
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![leaves, mids, cores],
        name: format!("fat-tree-3L-{}", num_pods * leaves_per_pod * hosts_per_leaf),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// The paper's 324-node, 36-switch two-level fat tree.
#[must_use]
pub fn paper_324() -> BuiltTopology {
    two_level(18, 18, 18)
}

/// The paper's 648-node, 54-switch two-level fat tree.
#[must_use]
pub fn paper_648() -> BuiltTopology {
    two_level(36, 18, 18)
}

/// The paper's 5832-node, 972-switch three-level fat tree.
#[must_use]
pub fn paper_5832() -> BuiltTopology {
    three_level(18, 18, 18, 18)
}

/// The paper's 11664-node, 1620-switch three-level fat tree.
#[must_use]
pub fn paper_11664() -> BuiltTopology {
    three_level(36, 18, 18, 18)
}

/// A preset row: (name, constructor, expected hosts, expected switches).
pub type PaperPreset = (&'static str, fn() -> BuiltTopology, usize, usize);

/// All four paper presets as (constructor, expected hosts, expected
/// switches), for sweep-style benches and tests.
pub const PAPER_PRESETS: [PaperPreset; 4] = [
    ("fat-tree-2L-324", paper_324, 324, 36),
    ("fat-tree-2L-648", paper_648, 648, 54),
    ("fat-tree-3L-5832", paper_5832, 5832, 972),
    ("fat-tree-3L-11664", paper_11664, 11664, 1620),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_two_level_shape() {
        let t = two_level(4, 3, 2);
        assert_eq!(t.num_hosts(), 12);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.leaves().len(), 4);
        t.subnet.validate(true).unwrap();
        // Links: 12 host links + 4 leaves * 2 spines.
        assert_eq!(t.subnet.num_links(), 12 + 8);
    }

    #[test]
    fn small_three_level_shape() {
        let t = three_level(2, 2, 2, 2);
        assert_eq!(t.num_hosts(), 8);
        // 4 leaves + 4 mids + 4 cores.
        assert_eq!(t.num_switches(), 12);
        t.subnet.validate(true).unwrap();
        // 8 host + 8 leaf-mid + 8 mid-core links.
        assert_eq!(t.subnet.num_links(), 24);
    }

    #[test]
    fn paper_324_matches_table1_row() {
        let t = paper_324();
        assert_eq!(t.num_hosts(), 324);
        assert_eq!(t.num_switches(), 36);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn paper_648_matches_table1_row() {
        let t = paper_648();
        assert_eq!(t.num_hosts(), 648);
        assert_eq!(t.num_switches(), 54);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    #[ignore = "builds a 6804-node graph; run with --ignored"]
    fn paper_5832_matches_table1_row() {
        let t = paper_5832();
        assert_eq!(t.num_hosts(), 5832);
        assert_eq!(t.num_switches(), 972);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    #[ignore = "builds a 13284-node graph; run with --ignored"]
    fn paper_11664_matches_table1_row() {
        let t = paper_11664();
        assert_eq!(t.num_hosts(), 11664);
        assert_eq!(t.num_switches(), 1620);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn leaf_switches_match_level_zero() {
        let t = two_level(4, 3, 2);
        let mut from_subnet = t.subnet.leaf_switches();
        from_subnet.sort();
        let mut from_builder = t.leaves().to_vec();
        from_builder.sort();
        assert_eq!(from_subnet, from_builder);
    }

    #[test]
    fn no_leaf_radix_overflow_in_presets() {
        // 36-port switches throughout: every node's port array is <= 37.
        let t = paper_324();
        for n in t.subnet.nodes() {
            assert!(n.num_external_ports() <= 36, "{} too wide", n.name);
        }
    }
}
