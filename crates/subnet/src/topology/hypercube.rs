//! Binary hypercubes.
//!
//! A `d`-dimensional hypercube has `2^d` switches, each cabled to the `d`
//! switches whose index differs in one bit. Rich in cycles, low diameter —
//! a classic stress case for deadlock-free routing.

use ib_types::PortNum;

use crate::subnet::Subnet;

use super::BuiltTopology;

/// Builds a `dims`-dimensional hypercube with `hosts_per_switch` hosts on
/// each switch. Dimension `k` uses port `k + 1`; hosts start at port
/// `dims + 1`.
#[must_use]
pub fn hypercube(dims: u32, hosts_per_switch: usize) -> BuiltTopology {
    assert!((1..=10).contains(&dims), "1..=10 dimensions supported");
    let n = 1usize << dims;
    let mut subnet = Subnet::new();
    let radix = dims as u8 + hosts_per_switch as u8;

    let switches: Vec<_> = (0..n)
        .map(|i| subnet.add_switch(format!("cube-{i:0width$b}", width = dims as usize), radix))
        .collect();

    for i in 0..n {
        for k in 0..dims {
            let j = i ^ (1 << k);
            if i < j {
                subnet
                    .connect(
                        switches[i],
                        PortNum::new(k as u8 + 1),
                        switches[j],
                        PortNum::new(k as u8 + 1),
                    )
                    .expect("hypercube wiring");
            }
        }
    }

    let mut hosts = Vec::with_capacity(n * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = subnet.add_hca(format!("host-{}", i * hosts_per_switch + h));
            subnet
                .connect(
                    sw,
                    PortNum::new(dims as u8 + 1 + h as u8),
                    host,
                    PortNum::new(1),
                )
                .expect("hypercube host wiring");
            hosts.push(host);
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("hypercube-{dims}d"),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cube_3d_shape() {
        let t = hypercube(3, 1);
        assert_eq!(t.num_switches(), 8);
        assert_eq!(t.num_hosts(), 8);
        // 8 switches x 3 dims / 2 + 8 host links.
        assert_eq!(t.subnet.num_links(), 12 + 8);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn dimension_links_match_port_numbers() {
        let t = hypercube(2, 0);
        // Switch 0 port 1 -> switch 1 (bit 0); port 2 -> switch 2 (bit 1).
        let sw0 = t.switch_levels[0][0];
        assert_eq!(
            t.subnet.neighbor(sw0, PortNum::new(1)).unwrap().node,
            t.switch_levels[0][1]
        );
        assert_eq!(
            t.subnet.neighbor(sw0, PortNum::new(2)).unwrap().node,
            t.switch_levels[0][2]
        );
    }

    #[test]
    fn degenerate_1d() {
        let t = hypercube(1, 2);
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.subnet.num_links(), 1 + 4);
        t.subnet.validate(true).unwrap();
    }
}
