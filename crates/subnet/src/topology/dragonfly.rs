//! Dragonfly topologies.
//!
//! A dragonfly is a two-tier hierarchy: `g` groups of `a` switches each,
//! fully connected *within* a group (local links) and with one global link
//! between every pair of groups. Minimal routes take at most one global
//! hop (`l-g-l`), but the global/local mix creates rich cycle structure —
//! the hard case for the deadlock analyses of §VI-C.

use ib_types::PortNum;

use crate::subnet::Subnet;

use super::BuiltTopology;

/// Parameters of a canonical dragonfly.
#[derive(Clone, Copy, Debug)]
pub struct DragonflySpec {
    /// Number of groups.
    pub groups: usize,
    /// Switches per group (fully meshed locally).
    pub switches_per_group: usize,
    /// Hosts per switch.
    pub hosts_per_switch: usize,
}

impl Default for DragonflySpec {
    fn default() -> Self {
        Self {
            groups: 5,
            switches_per_group: 4,
            hosts_per_switch: 2,
        }
    }
}

/// Builds the dragonfly. Global link `(gi, gj)` attaches to switch
/// `(gj - gi - 1) mod a` of group `gi` (round-robin spreading), matching
/// the usual palmtree arrangement.
#[must_use]
pub fn dragonfly(spec: DragonflySpec) -> BuiltTopology {
    let DragonflySpec {
        groups,
        switches_per_group: a,
        hosts_per_switch,
    } = spec;
    assert!(groups >= 2 && a >= 1);
    assert!(
        groups - 1 <= a * a,
        "not enough global-link attachment points"
    );

    let mut subnet = Subnet::new();
    // Generous radix: local mesh peers + worst-case global links + hosts.
    let radix = (a - 1 + (groups - 1) + hosts_per_switch).min(250) as u8;

    let mut switches = Vec::with_capacity(groups * a);
    for g in 0..groups {
        for s in 0..a {
            switches.push(subnet.add_switch(format!("df-g{g}s{s}"), radix));
        }
    }
    let sw_at = |g: usize, s: usize| switches[g * a + s];

    // Local full mesh within each group.
    for g in 0..groups {
        for i in 0..a {
            for j in (i + 1)..a {
                // Port for peer j on switch i: peers in index order.
                let pi = PortNum::new(j as u8); // peers 1..a-1 -> ports 1..
                let pj = PortNum::new(i as u8 + 1);
                subnet
                    .connect(sw_at(g, i), pi, sw_at(g, j), pj)
                    .expect("dragonfly local wiring");
            }
        }
    }

    // Global links: one per group pair, attach points spread round-robin
    // over each group's switches (palmtree-style), cabled on the lowest
    // free ports.
    for gi in 0..groups {
        for gj in (gi + 1)..groups {
            let si = (gj - gi - 1) % a;
            let sj = (gj - gi - 1) % a;
            subnet
                .connect_free(sw_at(gi, si), sw_at(gj, sj))
                .expect("dragonfly global wiring");
        }
    }

    // Hosts.
    let mut hosts = Vec::with_capacity(groups * a * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = subnet.add_hca(format!("host-{}", i * hosts_per_switch + h));
            let hp = subnet.first_free_port(sw).expect("dragonfly host port");
            subnet
                .connect(sw, hp, host, PortNum::new(1))
                .expect("dragonfly host wiring");
            hosts.push(host);
            let _ = h;
        }
    }

    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("dragonfly-g{groups}a{a}"),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape() {
        let t = dragonfly(DragonflySpec::default());
        assert_eq!(t.num_switches(), 20);
        assert_eq!(t.num_hosts(), 40);
        t.subnet.validate(true).unwrap();
        // Local links: 5 groups x C(4,2)=6 -> 30. Global: C(5,2)=10.
        // Hosts: 40.
        assert_eq!(t.subnet.num_links(), 30 + 10 + 40);
    }

    #[test]
    fn minimal_two_groups() {
        let t = dragonfly(DragonflySpec {
            groups: 2,
            switches_per_group: 1,
            hosts_per_switch: 1,
        });
        assert_eq!(t.num_switches(), 2);
        assert_eq!(t.subnet.num_links(), 1 + 2);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn every_group_pair_linked() {
        let spec = DragonflySpec {
            groups: 4,
            switches_per_group: 3,
            hosts_per_switch: 0,
        };
        let t = dragonfly(spec);
        // Count inter-group links by walking all cables.
        let a = spec.switches_per_group;
        let group_of = |idx: usize| idx / a;
        let mut pairs = std::collections::HashSet::new();
        for node in t.subnet.nodes() {
            for (_, r) in node.connected_ports() {
                let gi = group_of(node.id.index());
                let gj = group_of(r.node.index());
                if gi != gj {
                    pairs.insert((gi.min(gj), gi.max(gj)));
                }
            }
        }
        assert_eq!(pairs.len(), 6, "C(4,2) group pairs all connected");
    }
}
