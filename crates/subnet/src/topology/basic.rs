//! Small hand-shaped topologies used by unit tests and the paper's worked
//! examples (Fig. 3–6).

use ib_types::PortNum;

use crate::subnet::Subnet;

use super::BuiltTopology;

/// A single switch with `num_hosts` hosts — the smallest useful subnet.
#[must_use]
pub fn single_switch(num_hosts: usize) -> BuiltTopology {
    let mut subnet = Subnet::new();
    let sw = subnet.add_switch("sw-0", num_hosts as u8);
    let hosts: Vec<_> = (0..num_hosts)
        .map(|h| {
            let host = subnet.add_hca(format!("host-{h}"));
            subnet
                .connect(sw, PortNum::new(h as u8 + 1), host, PortNum::new(1))
                .expect("single-switch wiring");
            host
        })
        .collect();
    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![vec![sw]],
        name: format!("single-switch-{num_hosts}"),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// A linear chain of switches, each carrying `hosts_per_switch` hosts.
///
/// Port 1 points to the previous switch, port 2 to the next, hosts from 3.
#[must_use]
pub fn linear(num_switches: usize, hosts_per_switch: usize) -> BuiltTopology {
    assert!(num_switches >= 1);
    let mut subnet = Subnet::new();
    let radix = (2 + hosts_per_switch) as u8;
    let switches: Vec<_> = (0..num_switches)
        .map(|i| subnet.add_switch(format!("sw-{i}"), radix))
        .collect();
    for w in switches.windows(2) {
        subnet
            .connect(w[0], PortNum::new(2), w[1], PortNum::new(1))
            .expect("linear wiring");
    }
    let mut hosts = Vec::with_capacity(num_switches * hosts_per_switch);
    for (i, &sw) in switches.iter().enumerate() {
        for h in 0..hosts_per_switch {
            let host = subnet.add_hca(format!("host-{}", i * hosts_per_switch + h));
            subnet
                .connect(sw, PortNum::new(3 + h as u8), host, PortNum::new(1))
                .expect("linear host wiring");
            hosts.push(host);
        }
    }
    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![switches],
        name: format!("linear-{num_switches}x{hosts_per_switch}"),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// The two-leaf-switch, three-hypervisor fabric of the paper's Fig. 3/4/5.
///
/// Hosts 0 and 1 (hypervisor 1 and 2) sit on leaf 0, host 2 (hypervisor 3)
/// sits on leaf 1; the leaves are joined by a trunk. The Fig. 5 worked
/// example — migrate VM1 from hypervisor 1 to hypervisor 3 by swapping LIDs
/// 2 and 12 — runs on exactly this shape.
#[must_use]
pub fn fig5_fabric() -> BuiltTopology {
    let mut subnet = Subnet::new();
    let leaf0 = subnet.add_switch("leaf-0", 8);
    let leaf1 = subnet.add_switch("leaf-1", 8);
    // Port 4 on the upper-left switch forwards towards leaf 1 in Fig. 5
    // (LID 12's pre-migration port); port 2 carries hypervisor 1.
    subnet
        .connect(leaf0, PortNum::new(4), leaf1, PortNum::new(4))
        .expect("fig5 trunk");
    let hyp1 = subnet.add_hca("hyp-1");
    let hyp2 = subnet.add_hca("hyp-2");
    let hyp3 = subnet.add_hca("hyp-3");
    subnet
        .connect(leaf0, PortNum::new(2), hyp1, PortNum::new(1))
        .expect("fig5 hyp1");
    subnet
        .connect(leaf0, PortNum::new(3), hyp2, PortNum::new(1))
        .expect("fig5 hyp2");
    subnet
        .connect(leaf1, PortNum::new(2), hyp3, PortNum::new(1))
        .expect("fig5 hyp3");
    let built = BuiltTopology {
        subnet,
        hosts: vec![hyp1, hyp2, hyp3],
        switch_levels: vec![vec![leaf0, leaf1]],
        name: "fig5".into(),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

/// The three-level, four-hypervisor network of the paper's Fig. 6.
///
/// Twelve switches: leaves 1/2/11/12, middle 3/4/9/10, top 5/6/7/8 (numbered
/// here 0-based in `switch_levels`: leaves `[0..4)`, mids `[0..4)`, tops
/// `[0..4)`). Hypervisors 1 and 2 share leaf 0; hypervisor 3 is on leaf 1;
/// hypervisor 4 on leaf 3.
#[must_use]
pub fn fig6_fabric() -> BuiltTopology {
    let mut subnet = Subnet::new();
    // Leaves, mids, tops — 4 of each; radix 8 suffices.
    let leaves: Vec<_> = (0..4)
        .map(|i| subnet.add_switch(format!("leaf-{i}"), 8))
        .collect();
    let mids: Vec<_> = (0..4)
        .map(|i| subnet.add_switch(format!("mid-{i}"), 8))
        .collect();
    let tops: Vec<_> = (0..4)
        .map(|i| subnet.add_switch(format!("top-{i}"), 8))
        .collect();
    // Each leaf pairs with two mids (leaf i -> mids i/2*2 and i/2*2+1),
    // each mid with two tops, forming two symmetric halves re-joined at the
    // top — enough path diversity for the Fig. 6 scenarios.
    for (i, &leaf) in leaves.iter().enumerate() {
        let m0 = mids[(i / 2) * 2];
        let m1 = mids[(i / 2) * 2 + 1];
        subnet.connect_free(leaf, m0).expect("fig6 leaf-mid");
        subnet.connect_free(leaf, m1).expect("fig6 leaf-mid");
    }
    for (i, &mid) in mids.iter().enumerate() {
        let t0 = tops[(i % 2) * 2];
        let t1 = tops[(i % 2) * 2 + 1];
        subnet.connect_free(mid, t0).expect("fig6 mid-top");
        subnet.connect_free(mid, t1).expect("fig6 mid-top");
    }
    let mut hosts = Vec::new();
    // Hypervisors 1 and 2 on leaf 0, hypervisor 3 on leaf 1, hypervisor 4
    // on leaf 3 (far side), matching Fig. 6's placement.
    for (name, leaf) in [
        ("hyp-1", leaves[0]),
        ("hyp-2", leaves[0]),
        ("hyp-3", leaves[1]),
        ("hyp-4", leaves[3]),
    ] {
        let h = subnet.add_hca(name);
        let p = subnet.first_free_port(leaf).expect("fig6 host port");
        subnet
            .connect(leaf, p, h, PortNum::new(1))
            .expect("fig6 host");
        hosts.push(h);
    }
    let built = BuiltTopology {
        subnet,
        hosts,
        switch_levels: vec![leaves, mids, tops],
        name: "fig6".into(),
    };
    debug_assert!(built.subnet.validate(true).is_ok());
    built
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_switch_shape() {
        let t = single_switch(4);
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.subnet.num_links(), 4);
    }

    #[test]
    fn linear_shape() {
        let t = linear(3, 2);
        assert_eq!(t.num_hosts(), 6);
        assert_eq!(t.subnet.num_links(), 2 + 6);
        t.subnet.validate(true).unwrap();
    }

    #[test]
    fn fig5_shape() {
        let t = fig5_fabric();
        assert_eq!(t.num_hosts(), 3);
        assert_eq!(t.num_switches(), 2);
        // Hypervisor 1 hangs off leaf 0 port 2, the trunk off port 4 —
        // the exact ports the Fig. 5 LFT excerpt shows for LIDs 2 and 12.
        let leaf0 = t.switch_levels[0][0];
        let hyp1 = t.hosts[0];
        assert_eq!(
            t.subnet
                .neighbor(leaf0, ib_types::PortNum::new(2))
                .unwrap()
                .node,
            hyp1
        );
    }

    #[test]
    fn fig6_shape() {
        let t = fig6_fabric();
        assert_eq!(t.num_hosts(), 4);
        assert_eq!(t.num_switches(), 12);
        t.subnet.validate(true).unwrap();
        // Hypervisors 1 and 2 share a leaf.
        let h1_leaf = t
            .subnet
            .neighbor(t.hosts[0], ib_types::PortNum::new(1))
            .unwrap()
            .node;
        let h2_leaf = t
            .subnet
            .neighbor(t.hosts[1], ib_types::PortNum::new(1))
            .unwrap()
            .node;
        assert_eq!(h1_leaf, h2_leaf);
        // Hypervisor 4 does not.
        let h4_leaf = t
            .subnet
            .neighbor(t.hosts[3], ib_types::PortNum::new(1))
            .unwrap()
            .node;
        assert_ne!(h1_leaf, h4_leaf);
    }
}
