//! GraphViz export of a subnet.
//!
//! `to_dot` renders the fabric for inspection: physical switches as boxes,
//! vSwitches as diamonds, HCAs as ellipses, one edge per cable labeled
//! with its port pair, and LIDs in the node labels. Pipe through
//! `dot -Tsvg` to see what the builders built.

use std::fmt::Write as _;

use crate::subnet::Subnet;

/// Renders the subnet as a GraphViz `graph` document.
#[must_use]
pub fn to_dot(subnet: &Subnet) -> String {
    let mut out = String::new();
    out.push_str("graph subnet {\n");
    out.push_str("  graph [overlap=false, splines=true];\n");
    out.push_str("  node [fontname=\"monospace\", fontsize=10];\n");

    for node in subnet.nodes() {
        let lids: Vec<String> = node.lids().map(|l| l.to_string()).collect();
        let lid_label = if lids.is_empty() {
            String::new()
        } else {
            format!("\\nLID {}", lids.join(","))
        };
        let (shape, style) = if node.is_vswitch() {
            ("diamond", "dashed")
        } else if node.is_switch() {
            ("box", "solid")
        } else {
            ("ellipse", "solid")
        };
        let _ = writeln!(
            out,
            "  n{} [label=\"{}{}\", shape={}, style={}];",
            node.id.index(),
            node.name,
            lid_label,
            shape,
            style,
        );
    }

    for node in subnet.nodes() {
        for (port, remote) in node.connected_ports() {
            // Each cable once: owner = lower arena index.
            if node.id.index() < remote.node.index() {
                let _ = writeln!(
                    out,
                    "  n{} -- n{} [label=\"{}:{}\", fontsize=8];",
                    node.id.index(),
                    remote.node.index(),
                    port,
                    remote.port,
                );
            }
        }
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::basic::fig5_fabric;
    use ib_types::{Lid, PortNum};

    #[test]
    fn dot_contains_every_node_and_cable() {
        let mut t = fig5_fabric();
        t.subnet
            .assign_port_lid(t.hosts[0], PortNum::new(1), Lid::from_raw(1))
            .unwrap();
        let dot = to_dot(&t.subnet);
        assert!(dot.starts_with("graph subnet {"));
        assert!(dot.trim_end().ends_with('}'));
        // 5 nodes, 4 cables.
        assert_eq!(dot.matches("shape=").count(), 5);
        assert_eq!(dot.matches(" -- ").count(), 4);
        assert!(dot.contains("LID 1"));
        assert!(dot.contains("leaf-0"));
        assert!(dot.contains("hyp-3"));
    }

    #[test]
    fn vswitches_render_dashed_diamonds() {
        let mut s = Subnet::new();
        let sw = s.add_switch("sw", 2);
        let vsw = s.add_vswitch("vsw", 2);
        s.connect_free(sw, vsw).unwrap();
        let dot = to_dot(&s);
        assert!(dot.contains("shape=diamond, style=dashed"));
        assert!(dot.contains("shape=box, style=solid"));
    }
}
