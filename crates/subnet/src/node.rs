//! Nodes (switches and HCAs), ports, and endpoints.

use std::fmt;

use ib_types::{Guid, Lid, PortNum};

use crate::lft::Lft;

/// Dense, copyable handle to a node within one [`crate::Subnet`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The index into the subnet's node arena.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstructs a `NodeId` from an arena index.
    ///
    /// Only meaningful for indices previously obtained from the same subnet.
    #[must_use]
    pub const fn from_index(index: usize) -> Self {
        Self(index as u32)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

/// A `(node, port)` pair — one side of a link, or the attachment point of a
/// LID.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Endpoint {
    /// The node.
    pub node: NodeId,
    /// The port on that node.
    pub port: PortNum,
}

impl Endpoint {
    /// Convenience constructor.
    #[must_use]
    pub const fn new(node: NodeId, port: PortNum) -> Self {
        Self { node, port }
    }
}

/// Per-port state: cabling and (for HCA ports) the port LID(s).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PortState {
    /// The far end of the cable plugged into this port, if any.
    pub remote: Option<Endpoint>,
    /// Whether the physical link is down (cable present but not passing
    /// traffic). Down links keep their cabling information so a later
    /// link-up restores the original topology.
    pub down: bool,
    /// The base LID assigned to this port.
    ///
    /// Only HCA ports carry per-port LIDs; a switch's single LID lives on
    /// its management port 0 and is stored in [`NodeKind::Switch`].
    pub lid: Option<Lid>,
    /// Additional LIDs answered by this port: the `2^lmc - 1` extra
    /// sequential LIDs of an LMC range (IBA multipathing), which §V-A of
    /// the paper contrasts with the non-sequential per-VF LIDs of the
    /// prepopulated vSwitch.
    pub extra_lids: Vec<Lid>,
}

/// What a node is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// A crossbar switch with a Linear Forwarding Table.
    Switch {
        /// The LFT this switch routes by.
        lft: Lft,
        /// The switch's own LID (assigned by the SM to port 0).
        lid: Option<Lid>,
        /// Marks switches that are really SR-IOV vSwitches embedded in an
        /// HCA (§IV-B): they share a LID with their PF, are non-blocking by
        /// construction, and are *excluded* from "iterate all physical
        /// switches" reconfiguration loops.
        is_vswitch: bool,
    },
    /// A host channel adapter endpoint (a physical PF port or a VF exposed
    /// as a vHCA behind a vSwitch).
    Hca,
}

/// A node in the subnet.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Node {
    /// Handle of this node in its subnet.
    pub id: NodeId,
    /// Manufacturer (or SM-assigned virtual) GUID.
    pub guid: Guid,
    /// Human-readable name for diagnostics (`"leaf-3"`, `"hyp-1-vf2"`, ...).
    pub name: String,
    /// Switch or HCA specifics.
    pub kind: NodeKind,
    /// Port array. Index 0 is the management port; external ports start
    /// at index 1. HCAs conventionally use port 1.
    pub ports: Vec<PortState>,
    /// Whether the node is dead (crashed switch, removed HCA). Dead nodes
    /// stay in the arena so `NodeId`s remain stable, but are excluded from
    /// the switch/HCA iterators the SM and routing engines use.
    pub dead: bool,
}

impl Node {
    /// Whether the node is a switch (including vSwitches).
    #[must_use]
    pub fn is_switch(&self) -> bool {
        matches!(self.kind, NodeKind::Switch { .. })
    }

    /// Whether the node is a *physical* switch (excluding vSwitches).
    #[must_use]
    pub fn is_physical_switch(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::Switch {
                is_vswitch: false,
                ..
            }
        )
    }

    /// Whether the node is an SR-IOV vSwitch.
    #[must_use]
    pub fn is_vswitch(&self) -> bool {
        matches!(
            self.kind,
            NodeKind::Switch {
                is_vswitch: true,
                ..
            }
        )
    }

    /// Whether the node is an HCA.
    #[must_use]
    pub fn is_hca(&self) -> bool {
        matches!(self.kind, NodeKind::Hca)
    }

    /// The switch's LFT, if this is a switch.
    #[must_use]
    pub fn lft(&self) -> Option<&Lft> {
        match &self.kind {
            NodeKind::Switch { lft, .. } => Some(lft),
            NodeKind::Hca => None,
        }
    }

    /// Mutable access to the switch's LFT.
    #[must_use]
    pub fn lft_mut(&mut self) -> Option<&mut Lft> {
        match &mut self.kind {
            NodeKind::Switch { lft, .. } => Some(lft),
            NodeKind::Hca => None,
        }
    }

    /// Every LID this node answers to: the switch LID, or all HCA port LIDs.
    pub fn lids(&self) -> impl Iterator<Item = Lid> + '_ {
        let switch_lid = match &self.kind {
            NodeKind::Switch { lid, .. } => *lid,
            NodeKind::Hca => None,
        };
        switch_lid
            .into_iter()
            .chain(self.ports.iter().filter_map(|p| p.lid))
            .chain(self.ports.iter().flat_map(|p| p.extra_lids.iter().copied()))
    }

    /// Number of external ports (ports 1..).
    #[must_use]
    pub fn num_external_ports(&self) -> usize {
        self.ports.len().saturating_sub(1)
    }

    /// External ports currently cabled to a neighbor over a *live* link.
    /// Ports whose link is administratively or physically down are skipped,
    /// so discovery, routing, and tracing all see the degraded fabric.
    pub fn connected_ports(&self) -> impl Iterator<Item = (PortNum, Endpoint)> + '_ {
        self.ports.iter().enumerate().skip(1).filter_map(|(i, p)| {
            if p.down {
                return None;
            }
            p.remote.map(|r| (PortNum::new(i as u8), r))
        })
    }

    /// External ports with a cable plugged in, live or down — the physical
    /// cabling view (used by structural validation and link-state toggles).
    pub fn cabled_ports(&self) -> impl Iterator<Item = (PortNum, Endpoint)> + '_ {
        self.ports
            .iter()
            .enumerate()
            .skip(1)
            .filter_map(|(i, p)| p.remote.map(|r| (PortNum::new(i as u8), r)))
    }

    /// Whether the node is alive (not crashed/removed).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        !self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn switch_node() -> Node {
        Node {
            id: NodeId(0),
            guid: Guid::from_raw(1),
            name: "sw".into(),
            kind: NodeKind::Switch {
                lft: Lft::new(),
                lid: Some(Lid::from_raw(5)),
                is_vswitch: false,
            },
            ports: vec![PortState::default(); 37],
            dead: false,
        }
    }

    #[test]
    fn switch_classification() {
        let n = switch_node();
        assert!(n.is_switch());
        assert!(n.is_physical_switch());
        assert!(!n.is_vswitch());
        assert!(!n.is_hca());
        assert_eq!(n.num_external_ports(), 36);
        assert_eq!(n.lids().collect::<Vec<_>>(), vec![Lid::from_raw(5)]);
    }

    #[test]
    fn vswitch_classification() {
        let mut n = switch_node();
        n.kind = NodeKind::Switch {
            lft: Lft::new(),
            lid: None,
            is_vswitch: true,
        };
        assert!(n.is_switch());
        assert!(!n.is_physical_switch());
        assert!(n.is_vswitch());
    }

    #[test]
    fn hca_lids_come_from_ports() {
        let mut ports = vec![PortState::default(); 2];
        ports[1].lid = Some(Lid::from_raw(9));
        let n = Node {
            id: NodeId(1),
            guid: Guid::from_raw(2),
            name: "hca".into(),
            kind: NodeKind::Hca,
            ports,
            dead: false,
        };
        assert!(n.is_hca());
        assert!(n.lft().is_none());
        assert_eq!(n.lids().collect::<Vec<_>>(), vec![Lid::from_raw(9)]);
    }

    #[test]
    fn connected_ports_skips_management_and_empty() {
        let mut n = switch_node();
        n.ports[2].remote = Some(Endpoint::new(NodeId(7), PortNum::new(1)));
        let conns: Vec<_> = n.connected_ports().collect();
        assert_eq!(conns.len(), 1);
        assert_eq!(conns[0].0, PortNum::new(2));
        assert_eq!(conns[0].1.node, NodeId(7));
    }
}
