//! Fleet management with cheap reconfiguration: churn a dynamic-LID data
//! center into fragmentation, then defragment and evacuate — counting
//! every management packet (§V-B's motivation for spare VFs and fast
//! migrations).
//!
//! ```sh
//! cargo run --example datacenter_defrag
//! ```

use ib_vswitch::prelude::*;
use ib_vswitch::topology::fattree;

fn occupancy(dc: &DataCenter) -> String {
    dc.hypervisors
        .iter()
        .map(|h| h.active_vms().to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    // 4 leaves x 4 hosts with dynamic LID assignment: LIDs exist only for
    // running VMs.
    let built = fattree::two_level(4, 4, 2);
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchDynamic,
            vfs_per_hypervisor: 8,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up");
    println!(
        "boot: {} LIDs (only physical endpoints — §V-B's fast initial configuration)",
        dc.subnet.num_lids()
    );

    // Churn: boot 24 VMs round-robin, then kill every third one.
    let mut ids = Vec::new();
    for i in 0..24 {
        let hyp = i % dc.hypervisors.len();
        ids.push(dc.create_vm(format!("vm-{i}"), hyp).expect("create"));
    }
    println!(
        "after boot storm:   [{}] ({} LIDs)",
        occupancy(&dc),
        dc.subnet.num_lids()
    );
    for (i, id) in ids.iter().enumerate() {
        if i % 3 == 0 {
            dc.destroy_vm(*id).expect("destroy");
        }
    }
    println!(
        "after churn:        [{}] ({} LIDs)",
        occupancy(&dc),
        dc.subnet.num_lids()
    );

    // Defragment: pack VMs onto as few hypervisors as possible.
    let before = dc.sm.ledger.total();
    let reports = ib_cloud::scenarios::defragment(&mut dc).expect("defrag");
    let smps: usize = reports.iter().map(|r| r.total_smps()).sum();
    println!(
        "defragmentation:    [{}] — {} migrations, {} SMPs total ({} from the ledger)",
        occupancy(&dc),
        reports.len(),
        smps,
        dc.sm.ledger.total() - before,
    );
    for r in &reports {
        println!(
            "   {} hyp {} -> {} | n'={} m'={} intra-leaf={}",
            r.vm,
            r.from_hypervisor,
            r.to_hypervisor,
            r.lft.switches_updated,
            r.lft.max_blocks_per_switch,
            r.intra_leaf
        );
    }

    // Evacuate the busiest hypervisor for maintenance.
    let busiest = dc
        .hypervisors
        .iter()
        .max_by_key(|h| h.active_vms())
        .map(|h| h.index)
        .unwrap();
    let reports = ib_cloud::scenarios::evacuate(&mut dc, busiest).expect("evacuate");
    println!(
        "evacuate hyp {busiest}:     [{}] — {} migrations",
        occupancy(&dc),
        reports.len()
    );

    dc.verify_connectivity()
        .expect("fabric consistent after fleet ops");
    println!(
        "connectivity verified after {} ledger SMPs",
        dc.sm.ledger.total()
    );
}
