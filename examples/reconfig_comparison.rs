//! Traditional full reconfiguration vs the vSwitch method, head to head
//! (the §VI analysis on a live fabric): same migration, two costs.
//!
//! ```sh
//! cargo run --release --example reconfig_comparison
//! ```

use ib_vswitch::mad::CostModel;
use ib_vswitch::prelude::*;
use ib_vswitch::sim::smp_sim::{SmpLatencyModel, SmpReplay};
use ib_vswitch::topology::fattree;

fn main() {
    // A 2-level 324-node fat tree (the paper's smallest Fig. 7 subnet),
    // virtualized with prepopulated LIDs and 4 VFs per hypervisor.
    let built = fattree::paper_324();
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 4,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up");
    println!(
        "fabric: {} hypervisors, {} switches, {} LIDs, bring-up sent {} LFT SMPs, PCt = {:?}",
        dc.hypervisors.len(),
        dc.subnet.num_physical_switches(),
        dc.subnet.num_lids(),
        dc.bring_up.distribution.lft_smps,
        dc.bring_up.path_computation,
    );

    let vm = dc.create_vm("mover", 0).expect("create");

    // --- The vSwitch way: swap two LFT rows. ---
    let ledger_before = dc.sm.ledger.total();
    let report = dc
        .migrate_vm(vm, dc.hypervisors.len() - 1)
        .expect("migrate");
    let vswitch_smps = dc.sm.ledger.total() - ledger_before;
    println!("\n== vSwitch reconfiguration (LID swap) ==");
    println!(
        "  SMPs: {vswitch_smps} (n' = {}, m' = {}), zero path computation",
        report.lft.switches_updated, report.lft.max_blocks_per_switch
    );

    // --- The traditional way: recompute and redistribute everything. ---
    // Force every row dirty by clearing the installed LFTs first, then run
    // a full reconfiguration — the n*m floor of equation 2.
    let switches: Vec<_> = dc.subnet.physical_switches().map(|n| n.id).collect();
    for sw in switches {
        *dc.subnet.lft_mut(sw).unwrap() = Default::default();
    }
    let full = dc.sm.full_reconfiguration(&mut dc.subnet).expect("full RC");
    println!("\n== traditional full reconfiguration ==");
    println!(
        "  SMPs: {} ({} switches x up to {} blocks), PCt = {:?} ({} decisions)",
        full.distribution.lft_smps,
        full.distribution.switches_updated,
        full.distribution.max_blocks_per_switch,
        full.path_computation,
        full.decisions,
    );

    // --- Equations 3 vs 5 under the analytic cost model. ---
    let cost = CostModel::default();
    let pct_us = full.path_computation.as_secs_f64() * 1e6;
    let rc_us = cost.traditional_reconfig_us(
        pct_us,
        full.distribution.switches_updated,
        full.distribution.max_blocks_per_switch,
    );
    let vsw_us = cost.vswitch_reconfig_destination_us(
        report.lft.switches_updated,
        report.lft.max_blocks_per_switch.max(1),
    );
    println!("\n== analytic model (equations 3 and 5) ==");
    println!("  RCt        = PCt + n*m*(k+r) = {rc_us:.1} us");
    println!("  vSwitchRCt = n'*m'*k         = {vsw_us:.1} us");
    println!("  ratio: {:.0}x", rc_us / vsw_us.max(1e-9));

    // --- Event-driven replay: serial vs pipelined distribution. ---
    let model = SmpLatencyModel::default();
    let replay = SmpReplay::run(&dc.sm.ledger, Some("lft-distribution"), &model);
    let piped = SmpReplay::run(
        &dc.sm.ledger,
        Some("lft-distribution"),
        &SmpLatencyModel {
            pipeline_depth: 8,
            ..model
        },
    );
    println!("\n== event-driven LFT distribution replay ==");
    println!("  serial   : {} for {} SMPs", replay.makespan, replay.smps);
    println!("  pipelined: {} (depth 8)", piped.makespan);

    dc.verify_connectivity().expect("consistent");
    println!("\nconnectivity verified");
}
