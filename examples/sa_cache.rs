//! The motivation chain of §I, reproduced end to end: peers of a migrated
//! VM either storm the SA with PathRecord queries (addresses changed — the
//! Shared Port world) or reconnect from cache (addresses preserved — the
//! vSwitch world, enabling the reference-[10] caching scheme).
//!
//! ```sh
//! cargo run --example sa_cache
//! ```

use ib_vswitch::prelude::*;
use ib_vswitch::sm::{PathRecordCache, SaService};
use ib_vswitch::topology::fattree;
use ib_vswitch::types::Gid;

fn main() {
    let built = fattree::two_level(4, 4, 2);
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 2,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up");

    // One VM that everyone talks to.
    let server = dc.create_vm("server", 0).expect("create");
    let server_gid: Gid = dc.vm(server).unwrap().gid();

    // The SA directory tracks the VM's addresses.
    let mut sa = SaService::new();
    sa.register(server_gid, dc.vm(server).unwrap().lid);

    // Twelve peers resolve the server once and cache the record.
    let mut caches: Vec<PathRecordCache> = (0..12).map(|_| PathRecordCache::new()).collect();
    let peer_lids: Vec<_> = (1..13)
        .map(|h| dc.hypervisors[h].pf_lid(&dc.subnet).unwrap())
        .collect();
    for (cache, &slid) in caches.iter_mut().zip(&peer_lids) {
        cache
            .resolve(&mut sa, &dc.subnet, slid, server_gid)
            .expect("resolve");
    }
    println!(
        "before migration: {} SA queries (one per peer, cold caches)",
        sa.queries_served
    );

    // Live-migrate the server across the fabric. Under the vSwitch
    // architecture all three addresses follow it.
    let report = dc.migrate_vm(server, 15).expect("migrate");
    println!(
        "migrated {} hyp {} -> {} | LID {} -> {} | {} LFT SMPs",
        report.vm,
        report.from_hypervisor,
        report.to_hypervisor,
        report.lid_before,
        report.lid_after,
        report.lft.lft_smps
    );

    // Every cached record is still valid: the GID still answers at the
    // cached LID, because the LID moved *with* the VM.
    let stale = caches
        .iter()
        .filter(|c| c.is_stale(&dc.subnet, server_gid))
        .count();
    println!("stale cache entries after vSwitch migration: {stale}");

    let queries_before = sa.queries_served;
    for (cache, &slid) in caches.iter_mut().zip(&peer_lids) {
        let rec = cache
            .resolve(&mut sa, &dc.subnet, slid, server_gid)
            .expect("resolve");
        assert_eq!(rec.dlid, report.lid_after);
    }
    println!(
        "SA queries caused by 12 reconnections: {} (reference [10]'s caching pays off)",
        sa.queries_served - queries_before
    );

    // Contrast: simulate the Shared Port world where the LID changes.
    // Rebinding the server's record to a different LID invalidates every
    // cache at once — the query storm of §I.
    println!("\n-- counterfactual: the VM's LID had changed (Shared Port) --");
    let mut storm = 0;
    for cache in &mut caches {
        cache.invalidate(server_gid);
        storm += 1;
    }
    let queries_before = sa.queries_served;
    for (cache, &slid) in caches.iter_mut().zip(&peer_lids) {
        cache
            .resolve(&mut sa, &dc.subnet, slid, server_gid)
            .expect("resolve");
    }
    println!(
        "invalidated {storm} caches; reconnection cost {} fresh SA queries",
        sa.queries_served - queries_before
    );

    dc.verify_connectivity().expect("fabric consistent");
}
