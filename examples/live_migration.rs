//! The §VII-B OpenStack live-migration workflow on the paper's testbed,
//! run under all three SR-IOV architectures.
//!
//! ```sh
//! cargo run --example live_migration
//! ```

use ib_cloud::scenarios::testbed_datacenter;
use ib_vswitch::prelude::*;

fn run(arch: VirtArch) {
    println!("\n================ {arch} ================");
    let mut dc = testbed_datacenter(DataCenterConfig {
        arch,
        vfs_per_hypervisor: 4,
        ..DataCenterConfig::default()
    })
    .expect("testbed bring-up");

    println!(
        "testbed: {} compute hypervisors, {} switches, {} LIDs",
        dc.hypervisors.len(),
        dc.subnet.num_physical_switches(),
        dc.subnet.num_lids()
    );

    let vm = dc.create_vm("centos7-vm", 0).expect("boot VM");
    {
        let rec = dc.vm(vm).unwrap();
        println!(
            "booted {} on hypervisor 0: LID {} vGUID {}",
            rec.name, rec.lid, rec.vguid
        );
    }

    // Under Shared Port the destination must be empty (the emulation
    // restriction); hypervisor 3 is on the other switch.
    let workflow = LiveMigrationWorkflow::default();
    match workflow.execute(&mut dc, vm, 3) {
        Ok(trace) => {
            println!("four-step workflow:");
            for step in &trace.steps {
                println!("  {:<36} {}", step.name, step.duration);
            }
            println!(
                "downtime {} (network reconfiguration share: {:.4}%)",
                trace.timeline.downtime,
                trace.timeline.reconfiguration_share() * 100.0
            );
            println!(
                "addresses preserved across migration: {}",
                trace.addresses_preserved
            );
            println!(
                "reconfiguration SMPs: {} hypervisor-side + {} LFT updates (n' = {}, m' = {})",
                trace.report.hypervisor_smps,
                trace.report.lft.lft_smps,
                trace.report.lft.switches_updated,
                trace.report.lft.max_blocks_per_switch
            );
        }
        Err(e) => println!("migration refused: {e}"),
    }

    // Demonstrate the Shared Port restriction: boot a second VM on the
    // destination and try to move the first one back.
    if arch == VirtArch::SharedPort {
        let _squatter = dc.create_vm("squatter", 0).expect("boot");
        match dc.migrate_vm(vm, 0) {
            Err(e) => println!("as expected, shared-port refuses: {e}"),
            Ok(_) => println!("unexpected: shared-port migration onto a busy node succeeded"),
        }
    }

    dc.verify_connectivity()
        .expect("post-migration fabric consistent");
    println!("connectivity verified");
}

fn main() {
    println!("replica of the paper's testbed (section VII-A):");
    println!("  2x SUN DCS 36 QDR switches, 6 compute nodes, 3 infra nodes");
    for arch in [
        VirtArch::SharedPort,
        VirtArch::VSwitchPrepopulated,
        VirtArch::VSwitchDynamic,
    ] {
        run(arch);
    }
}
