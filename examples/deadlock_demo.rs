//! Deadlock, made visible (§VI-C): a cyclic routing function wedges a
//! credit-gated fabric; IB timeouts recover it with packet loss; virtual
//! lanes (DFSSSP) avoid it outright.
//!
//! ```sh
//! cargo run --example deadlock_demo
//! ```

use ib_vswitch::prelude::*;
use ib_vswitch::routing::cdg::Cdg;
use ib_vswitch::routing::graph::SwitchGraph;
use ib_vswitch::sim::credit::{run, CreditSimConfig, Flow};
use ib_vswitch::topology::torus;

fn main() {
    // A 4x4 torus: rings everywhere. Bring it up with plain Min-Hop
    // (shortest paths, no deadlock avoidance).
    let mut t = torus::torus_2d(4, 4, 1, true);
    let mut sm = SubnetManager::new(
        t.hosts[0],
        SmConfig {
            engine: EngineKind::MinHop,
            smp_mode: SmpMode::Directed,
            ..SmConfig::default()
        },
    );
    sm.bring_up(&mut t.subnet).expect("bring-up");

    // The CDG says: cycle.
    let g = SwitchGraph::build(&t.subnet).expect("graph");
    let tables = EngineKind::MinHop
        .build()
        .compute(&t.subnet)
        .expect("routing");
    let cdg = Cdg::from_tables(&g, &tables, |_| true);
    println!(
        "min-hop on 4x4 torus: CDG has {} channels, {} dependencies, cycle: {}",
        cdg.num_channels(),
        cdg.num_edges(),
        cdg.find_cycle().is_some()
    );

    // All-to-all traffic, tight buffers.
    let mut flows = Vec::new();
    for &a in &t.hosts {
        for &b in &t.hosts {
            if a != b {
                flows.push(Flow {
                    src: a,
                    dst: t.subnet.node(b).ports[1].lid.unwrap(),
                    packets: 20,
                });
            }
        }
    }
    let base = CreditSimConfig {
        credits_per_channel: 1,
        ..CreditSimConfig::default()
    };

    println!("\n== min-hop, one VL, no timeout ==");
    let report = run(&t.subnet, &flows, &tables.vls, &base).expect("sim");
    println!("  {report:?}");

    println!("\n== min-hop, one VL, IB timeout enabled ==");
    let report = run(
        &t.subnet,
        &flows,
        &tables.vls,
        &CreditSimConfig {
            timeout_rounds: Some(64),
            max_rounds: 2_000_000,
            ..base
        },
    )
    .expect("sim");
    println!("  {report:?}");
    println!("  (the §VI-C position: rare deadlocks resolved by timeouts, at the cost of drops)");

    println!("\n== dfsssp: lanes split the cycle ==");
    let mut t2 = torus::torus_2d(4, 4, 1, true);
    let mut sm2 = SubnetManager::new(
        t2.hosts[0],
        SmConfig {
            engine: EngineKind::Dfsssp,
            smp_mode: SmpMode::Directed,
            ..SmConfig::default()
        },
    );
    sm2.bring_up(&mut t2.subnet).expect("bring-up");
    let tables2 = EngineKind::Dfsssp
        .build()
        .compute(&t2.subnet)
        .expect("routing");
    let mut flows2 = Vec::new();
    for &a in &t2.hosts {
        for &b in &t2.hosts {
            if a != b {
                flows2.push(Flow {
                    src: a,
                    dst: t2.subnet.node(b).ports[1].lid.unwrap(),
                    packets: 20,
                });
            }
        }
    }
    let report = run(&t2.subnet, &flows2, &tables2.vls, &base).expect("sim");
    println!("  {report:?}");
    println!("  lanes in use: {}", tables2.vls.lanes_used());
}
