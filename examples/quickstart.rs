//! Quickstart: build a virtualized IB fabric, boot VMs, live-migrate one.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ib_vswitch::prelude::*;
use ib_vswitch::topology::fattree;

fn main() {
    // A 2-level fat tree: 6 leaves x 6 hosts, 3 spines (36 hosts, 9
    // switches), every host virtualized into a hypervisor with 4 VFs whose
    // LIDs are prepopulated at boot (§V-A of the paper).
    let built = fattree::two_level(6, 6, 3);
    let mut dc = DataCenter::from_topology(
        built,
        DataCenterConfig {
            arch: VirtArch::VSwitchPrepopulated,
            vfs_per_hypervisor: 4,
            engine: EngineKind::FatTree,
            ..DataCenterConfig::default()
        },
    )
    .expect("bring-up");

    println!("== fabric ==");
    println!("  hypervisors        : {}", dc.hypervisors.len());
    println!(
        "  physical switches  : {}",
        dc.subnet.num_physical_switches()
    );
    println!("  LIDs consumed      : {}", dc.subnet.num_lids());
    println!(
        "  bring-up           : {} SMPs total ({} LFT blocks), PCt = {:?} ({})",
        dc.bring_up.total_smps(),
        dc.bring_up.distribution.lft_smps,
        dc.bring_up.path_computation,
        dc.bring_up.engine,
    );

    // Boot a few VMs.
    let vm0 = dc.create_vm("web-0", 0).expect("create");
    let vm1 = dc.create_vm("web-1", 1).expect("create");
    let _vm2 = dc.create_vm("db-0", 2).expect("create");
    println!("\n== VMs ==");
    for rec in dc.vms() {
        println!(
            "  {:>6} on hypervisor {:>2} slot {} | LID {:>3} GID {}",
            rec.name,
            rec.hypervisor,
            rec.vf_slot,
            rec.lid,
            rec.gid()
        );
    }

    // Live-migrate vm0 to the far side of the fabric.
    let report = dc.migrate_vm(vm0, 30).expect("migrate");
    println!("\n== migration of {} ==", report.vm);
    println!(
        "  hypervisor {} -> {} (intra-leaf: {})",
        report.from_hypervisor, report.to_hypervisor, report.intra_leaf
    );
    println!(
        "  LID {} -> {} (addresses follow the VM)",
        report.lid_before, report.lid_after
    );
    println!(
        "  SMPs: {} to hypervisors, {} LFT updates on {} switches (n'), max {} per switch (m')",
        report.hypervisor_smps,
        report.lft.lft_smps,
        report.lft.switches_updated,
        report.lft.max_blocks_per_switch,
    );

    // And one more, within a leaf this time.
    let report = dc.migrate_vm(vm1, 0).expect("migrate");
    println!("\n== migration of {} ==", report.vm);
    println!(
        "  hypervisor {} -> {} (intra-leaf: {})",
        report.from_hypervisor, report.to_hypervisor, report.intra_leaf
    );
    println!(
        "  {} LFT SMPs on {} switches",
        report.lft.lft_smps, report.lft.switches_updated
    );

    dc.verify_connectivity().expect("fabric stays consistent");
    println!("\nconnectivity verified: every VM reachable from every hypervisor");
}
